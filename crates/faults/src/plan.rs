//! Fault plans: declarative fault scenarios compiled into timed events.

use tango_simcore::SimRng;
use tango_types::{ClusterId, NodeId, SimTime};

/// A node selector that survives not knowing the concrete layout: presets
/// draw worker counts from the seeded RNG, so scenarios address nodes by
/// role and position instead of raw [`NodeId`]s.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeRef {
    /// A concrete node id (when the layout is known).
    Node(NodeId),
    /// The `index`-th worker of a cluster; `index` wraps modulo the
    /// cluster's worker count, so plans stay valid across layouts with
    /// jittered worker counts.
    Worker {
        /// Cluster whose worker list is indexed.
        cluster: ClusterId,
        /// Worker position (modulo the cluster's worker count).
        index: usize,
    },
    /// A cluster's master node.
    Master(ClusterId),
}

/// A concrete fault at a concrete sim time — what [`FaultPlan::compile`]
/// produces and the system's event loop consumes.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultEvent {
    /// A node fails abruptly: running work is interrupted, queues drain.
    NodeCrash {
        /// The failing node.
        node: NodeId,
    },
    /// A crashed node rejoins (cold: containers restart, history resets).
    NodeRecover {
        /// The rejoining node.
        node: NodeId,
    },
    /// Inflate latency and deflate bandwidth on one cluster pair.
    LinkDegrade {
        /// One endpoint.
        a: ClusterId,
        /// Other endpoint.
        b: ClusterId,
        /// One-way latency multiplier (≥ 1 inflates).
        latency_factor: f64,
        /// Bandwidth divisor (≥ 1 deflates).
        bandwidth_factor: f64,
    },
    /// Remove the degradation on a cluster pair.
    LinkRestore {
        /// One endpoint.
        a: ClusterId,
        /// Other endpoint.
        b: ClusterId,
    },
    /// Split the WAN into two sides that cannot reach each other.
    Partition {
        /// Clusters on the minority side (everything else stays on the
        /// majority side together with any unlisted cluster).
        side: Vec<ClusterId>,
    },
    /// Heal the active partition.
    Heal,
}

#[derive(Debug, Clone)]
enum TimedSpec {
    Crash(NodeRef),
    Recover(NodeRef),
    Degrade {
        a: ClusterId,
        b: ClusterId,
        latency_factor: f64,
        bandwidth_factor: f64,
    },
    Restore {
        a: ClusterId,
        b: ClusterId,
    },
    Partition {
        side: Vec<ClusterId>,
    },
    Heal,
}

/// A seeded stochastic churn generator: every worker independently
/// alternates up/down with exponential time-to-failure and time-to-repair.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeChurn {
    /// Mean time to failure while up.
    pub mttf: SimTime,
    /// Mean time to repair while down.
    pub mttr: SimTime,
    /// Seed of the generator's RNG stream (forked per node, in layout
    /// order, before any event executes — thread-count invariant).
    pub seed: u64,
}

/// The node layout a plan is compiled against: per-cluster master and
/// worker ids, in cluster order.
#[derive(Debug, Clone, Default)]
pub struct SystemLayout {
    /// Master node of each cluster.
    pub masters: Vec<NodeId>,
    /// Worker nodes of each cluster.
    pub workers: Vec<Vec<NodeId>>,
}

impl SystemLayout {
    /// Resolve a [`NodeRef`] against this layout. `None` when the cluster
    /// does not exist or has no workers.
    pub fn resolve(&self, r: NodeRef) -> Option<NodeId> {
        match r {
            NodeRef::Node(n) => Some(n),
            NodeRef::Master(c) => self.masters.get(c.index()).copied(),
            NodeRef::Worker { cluster, index } => {
                let ws = self.workers.get(cluster.index())?;
                if ws.is_empty() {
                    None
                } else {
                    Some(ws[index % ws.len()])
                }
            }
        }
    }
}

/// A declarative fault scenario: timed faults plus churn generators.
///
/// Build with the chainable methods, hand it to the system via
/// `TangoConfig::faults`, and it compiles into simulation events when the
/// run starts. An empty (default) plan costs nothing on the hot path.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    timed: Vec<(SimTime, TimedSpec)>,
    churn: Vec<NodeChurn>,
    /// Cold-start delay before a recovered node's containers accept work
    /// again (the kube restart, image-warm path).
    pub restart_delay: SimTime,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            timed: Vec::new(),
            churn: Vec::new(),
            restart_delay: SimTime::from_millis(200),
        }
    }
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// `true` when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.timed.is_empty() && self.churn.is_empty()
    }

    /// Crash a node at `at`.
    pub fn crash_at(mut self, at: SimTime, node: NodeRef) -> Self {
        self.timed.push((at, TimedSpec::Crash(node)));
        self
    }

    /// Recover a node at `at`.
    pub fn recover_at(mut self, at: SimTime, node: NodeRef) -> Self {
        self.timed.push((at, TimedSpec::Recover(node)));
        self
    }

    /// Crash a node at `at` and recover it `duration` later.
    pub fn crash_for(self, at: SimTime, node: NodeRef, duration: SimTime) -> Self {
        self.crash_at(at, node).recover_at(at + duration, node)
    }

    /// Take a cluster's master down at `at` for `duration` — the
    /// §"master failover" scenario: dispatch for that cluster is taken
    /// over by the nearest reachable live master until recovery.
    pub fn master_failover(self, at: SimTime, cluster: ClusterId, duration: SimTime) -> Self {
        self.crash_for(at, NodeRef::Master(cluster), duration)
    }

    /// Degrade the `a`–`b` link at `at`: one-way latency × `latency_factor`,
    /// bandwidth ÷ `bandwidth_factor`.
    pub fn degrade_link_at(
        mut self,
        at: SimTime,
        a: ClusterId,
        b: ClusterId,
        latency_factor: f64,
        bandwidth_factor: f64,
    ) -> Self {
        self.timed.push((
            at,
            TimedSpec::Degrade {
                a,
                b,
                latency_factor,
                bandwidth_factor,
            },
        ));
        self
    }

    /// Restore the `a`–`b` link at `at`.
    pub fn restore_link_at(mut self, at: SimTime, a: ClusterId, b: ClusterId) -> Self {
        self.timed.push((at, TimedSpec::Restore { a, b }));
        self
    }

    /// Degrade a link at `at` and restore it `duration` later.
    pub fn degrade_link_for(
        self,
        at: SimTime,
        a: ClusterId,
        b: ClusterId,
        latency_factor: f64,
        bandwidth_factor: f64,
        duration: SimTime,
    ) -> Self {
        self.degrade_link_at(at, a, b, latency_factor, bandwidth_factor)
            .restore_link_at(at + duration, a, b)
    }

    /// Partition the WAN at `at`: clusters in `side` lose connectivity to
    /// everything else (intra-side and intra-cluster traffic still flows).
    pub fn partition_at(mut self, at: SimTime, side: &[ClusterId]) -> Self {
        self.timed.push((
            at,
            TimedSpec::Partition {
                side: side.to_vec(),
            },
        ));
        self
    }

    /// Heal the active partition at `at`.
    pub fn heal_at(mut self, at: SimTime) -> Self {
        self.timed.push((at, TimedSpec::Heal));
        self
    }

    /// Add a seeded churn generator over all workers (masters churn only
    /// via [`FaultPlan::master_failover`], keeping the control plane's
    /// failure mode explicit).
    pub fn node_churn(mut self, mttf: SimTime, mttr: SimTime, seed: u64) -> Self {
        self.churn.push(NodeChurn { mttf, mttr, seed });
        self
    }

    /// Override the recovery cold-start delay.
    pub fn with_restart_delay(mut self, delay: SimTime) -> Self {
        self.restart_delay = delay;
        self
    }

    /// Compile the plan against a layout into a time-sorted event
    /// schedule over `[0, horizon]`. Purely sequential and seeded: the
    /// same (plan, layout, horizon) always yields the same schedule,
    /// regardless of thread count. Events past the horizon are dropped; a
    /// node whose churn repair falls past the horizon simply stays down
    /// (its downtime is settled at the end of the run).
    pub fn compile(&self, layout: &SystemLayout, horizon: SimTime) -> Vec<(SimTime, FaultEvent)> {
        let mut out: Vec<(SimTime, FaultEvent)> = Vec::new();
        for (at, spec) in &self.timed {
            if *at > horizon {
                continue;
            }
            let ev = match spec {
                TimedSpec::Crash(r) => layout
                    .resolve(*r)
                    .map(|node| FaultEvent::NodeCrash { node }),
                TimedSpec::Recover(r) => layout
                    .resolve(*r)
                    .map(|node| FaultEvent::NodeRecover { node }),
                TimedSpec::Degrade {
                    a,
                    b,
                    latency_factor,
                    bandwidth_factor,
                } => Some(FaultEvent::LinkDegrade {
                    a: *a,
                    b: *b,
                    latency_factor: *latency_factor,
                    bandwidth_factor: *bandwidth_factor,
                }),
                TimedSpec::Restore { a, b } => Some(FaultEvent::LinkRestore { a: *a, b: *b }),
                TimedSpec::Partition { side } => Some(FaultEvent::Partition { side: side.clone() }),
                TimedSpec::Heal => Some(FaultEvent::Heal),
            };
            if let Some(ev) = ev {
                out.push((*at, ev));
            }
        }
        for churn in &self.churn {
            let mut master_rng = SimRng::new(churn.seed);
            for workers in &layout.workers {
                for &node in workers {
                    // fork order = layout order: deterministic per-node streams
                    let mut rng = master_rng.fork();
                    let mut t = SimTime::ZERO;
                    loop {
                        t += Self::exp_draw(&mut rng, churn.mttf);
                        if t > horizon {
                            break;
                        }
                        out.push((t, FaultEvent::NodeCrash { node }));
                        t += Self::exp_draw(&mut rng, churn.mttr);
                        if t > horizon {
                            break; // stays down through the horizon
                        }
                        out.push((t, FaultEvent::NodeRecover { node }));
                    }
                }
            }
        }
        // stable sort: ties keep insertion order (timed before churn)
        out.sort_by_key(|(t, _)| *t);
        out
    }

    fn exp_draw(rng: &mut SimRng, mean: SimTime) -> SimTime {
        let us = rng.exponential(mean.as_micros() as f64);
        SimTime::from_micros((us.round() as u64).max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout() -> SystemLayout {
        SystemLayout {
            masters: vec![NodeId(0), NodeId(4)],
            workers: vec![
                vec![NodeId(1), NodeId(2), NodeId(3)],
                vec![NodeId(5), NodeId(6)],
            ],
        }
    }

    #[test]
    fn node_refs_resolve_against_the_layout() {
        let l = layout();
        assert_eq!(l.resolve(NodeRef::Master(ClusterId(1))), Some(NodeId(4)));
        assert_eq!(
            l.resolve(NodeRef::Worker {
                cluster: ClusterId(0),
                index: 1
            }),
            Some(NodeId(2))
        );
        // index wraps modulo the worker count
        assert_eq!(
            l.resolve(NodeRef::Worker {
                cluster: ClusterId(1),
                index: 5
            }),
            Some(NodeId(6))
        );
        assert_eq!(l.resolve(NodeRef::Master(ClusterId(9))), None);
    }

    #[test]
    fn timed_events_compile_sorted_and_clamped_to_horizon() {
        let plan = FaultPlan::new()
            .crash_for(
                SimTime::from_secs(2),
                NodeRef::Node(NodeId(1)),
                SimTime::from_secs(1),
            )
            .degrade_link_at(SimTime::from_secs(1), ClusterId(0), ClusterId(1), 4.0, 2.0)
            .recover_at(SimTime::from_secs(99), NodeRef::Node(NodeId(1)));
        let events = plan.compile(&layout(), SimTime::from_secs(10));
        assert_eq!(events.len(), 3); // the t=99s recover is past the horizon
        assert!(events.windows(2).all(|w| w[0].0 <= w[1].0));
        assert!(matches!(events[0].1, FaultEvent::LinkDegrade { .. }));
    }

    #[test]
    fn master_failover_compiles_to_crash_and_recover_of_the_master() {
        let plan = FaultPlan::new().master_failover(
            SimTime::from_secs(1),
            ClusterId(0),
            SimTime::from_secs(2),
        );
        let events = plan.compile(&layout(), SimTime::from_secs(10));
        assert_eq!(
            events,
            vec![
                (
                    SimTime::from_secs(1),
                    FaultEvent::NodeCrash { node: NodeId(0) }
                ),
                (
                    SimTime::from_secs(3),
                    FaultEvent::NodeRecover { node: NodeId(0) }
                ),
            ]
        );
    }

    #[test]
    fn churn_is_deterministic_per_seed_and_alternates_per_node() {
        let plan =
            FaultPlan::new().node_churn(SimTime::from_secs(3), SimTime::from_secs(1), 0xC0FFEE);
        let a = plan.compile(&layout(), SimTime::from_secs(60));
        let b = plan.compile(&layout(), SimTime::from_secs(60));
        assert_eq!(a, b);
        assert!(!a.is_empty(), "60s horizon at 3s MTTF must produce churn");
        // per node: strict crash/recover alternation starting with a crash
        for workers in &layout().workers {
            for &node in workers {
                let mut expect_crash = true;
                for (_, ev) in a.iter() {
                    match ev {
                        FaultEvent::NodeCrash { node: n } if *n == node => {
                            assert!(expect_crash, "double crash on {node:?}");
                            expect_crash = false;
                        }
                        FaultEvent::NodeRecover { node: n } if *n == node => {
                            assert!(!expect_crash, "recover before crash on {node:?}");
                            expect_crash = true;
                        }
                        _ => {}
                    }
                }
            }
        }
    }

    #[test]
    fn different_churn_seeds_differ() {
        let horizon = SimTime::from_secs(60);
        let mk = |seed| {
            FaultPlan::new()
                .node_churn(SimTime::from_secs(5), SimTime::from_secs(1), seed)
                .compile(&layout(), horizon)
        };
        assert_ne!(mk(1), mk(2));
    }

    #[test]
    fn empty_plan_compiles_to_nothing() {
        let plan = FaultPlan::default();
        assert!(plan.is_empty());
        assert!(plan.compile(&layout(), SimTime::from_secs(100)).is_empty());
    }
}

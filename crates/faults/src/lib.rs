//! Deterministic fault injection for the Tango simulation.
//!
//! The edge's defining property is that nodes crash, links degrade and
//! masters disappear. This crate turns those misbehaviours into ordinary
//! simulation events: a [`FaultPlan`] combines explicit timed faults
//! (crash/recover, link degrade/restore, partition/heal, master failover)
//! with seeded stochastic churn generators (exponential MTTF/MTTR over
//! [`tango_simcore::SimRng`] streams) and compiles — sequentially, before
//! the event loop starts — into a sorted schedule of [`FaultEvent`]s.
//! Because compilation never touches the worker pool, any fault scenario
//! replays bit-identically at any `TANGO_THREADS` setting.
//!
//! At run time [`FaultState`] tracks which nodes are down, stamps each
//! crash with a new *epoch* (so in-flight deliveries addressed to the
//! pre-crash node can be detected and bounced), and accumulates the
//! [`FaultSummary`] that the run report surfaces: crashes, recoveries,
//! interrupted/rescheduled requests, total downtime and the QoS
//! violations that land inside a fault window.

mod plan;
mod snapshot;
mod state;

pub use plan::{FaultEvent, FaultPlan, NodeChurn, NodeRef, SystemLayout};
pub use state::{FaultState, FaultSummary};

//! Runtime fault bookkeeping: which nodes are down, crash epochs, and the
//! summary the run report surfaces.
//!
//! Since the delegated-orchestration work the state distinguishes a
//! node being **physically down** (its containers died) from being
//! **detected down** (the control plane knows). Under the oracle fault
//! model the two flags move together ([`FaultState::on_crash`]); under
//! keep-alive detection the runtime registers the physical crash first
//! ([`FaultState::on_phys_crash`]) and promotes it to detected only when
//! the health detector trips ([`FaultState::mark_detected`]). Work that
//! was running on the node at crash time parks in a per-node *limbo*
//! until detection or recovery decides its fate.

use tango_types::{NodeId, RequestId, ServiceClass, SimTime};

/// Aggregated fault accounting for a run. All counters are cumulative;
/// [`FaultState::settle`] folds still-open downtime in at the horizon.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultSummary {
    /// Node crashes executed (idempotent duplicates not counted).
    pub node_crashes: u64,
    /// Node recoveries executed.
    pub node_recoveries: u64,
    /// Crashes that hit a cluster master (failover routing engaged).
    pub master_failovers: u64,
    /// Link degradations applied.
    pub links_degraded: u64,
    /// Link restorations applied.
    pub links_restored: u64,
    /// Partitions applied.
    pub partitions: u64,
    /// Partitions healed.
    pub heals: u64,
    /// LC requests interrupted mid-execution by a crash.
    pub lc_interrupted: u64,
    /// BE requests interrupted mid-execution by a crash.
    pub be_interrupted: u64,
    /// Requests drained out of a crashed node's wait queue.
    pub wait_drained: u64,
    /// In-flight deliveries that bounced off a crashed target.
    pub bounced_deliveries: u64,
    /// Total requests pushed back into scheduling queues because of a
    /// fault (interrupted + drained + bounced); some of these may later
    /// exhaust their requeue budget and fail.
    pub rescheduled: u64,
    /// Dispatch decisions that targeted a down node. The candidate
    /// masking makes this impossible; it is counted (rather than assumed)
    /// so the invariant tests can assert it stays zero.
    pub down_node_dispatches: u64,
    /// Sum of per-node downtime over the run.
    pub total_downtime: SimTime,
    /// LC completions that missed their QoS target while a fault (node
    /// down, link degraded, or partition) was active.
    pub fault_qos_violations: u64,
}

/// Live fault state, indexed by node.
#[derive(Debug, Clone)]
pub struct FaultState {
    /// Detected-down flags: what dispatch masking, candidate views and
    /// failover routing read. Under the oracle model this is also the
    /// physical truth.
    down: Vec<bool>,
    /// Physically-down flags: the ground truth the keep-alive detector
    /// works toward. `phys_down[i] && !down[i]` is the undetected window.
    phys_down: Vec<bool>,
    /// Work interrupted by an undetected crash, parked per node until
    /// detection (requeue then) or recovery (requeue at recovery).
    limbo_run: Vec<Vec<(ServiceClass, RequestId)>>,
    down_since: Vec<SimTime>,
    /// Bumped on every crash: deliveries scheduled before the crash carry
    /// the old epoch and are bounced instead of touching post-recovery
    /// reservations.
    epochs: Vec<u64>,
    down_count: u32,
    active_link_faults: u32,
    partition_active: bool,
    /// Cumulative fault accounting.
    pub summary: FaultSummary,
}

impl FaultState {
    /// State for a system of `n_nodes` nodes, all up.
    pub fn new(n_nodes: usize) -> Self {
        FaultState {
            down: vec![false; n_nodes],
            phys_down: vec![false; n_nodes],
            limbo_run: vec![Vec::new(); n_nodes],
            down_since: vec![SimTime::ZERO; n_nodes],
            epochs: vec![0; n_nodes],
            down_count: 0,
            active_link_faults: 0,
            partition_active: false,
            summary: FaultSummary::default(),
        }
    }

    /// Whether a node is currently *detected* down — what schedulers,
    /// dispatch masking and failover routing act on.
    pub fn is_down(&self, node: NodeId) -> bool {
        self.down[node.index()]
    }

    /// Whether a node is *physically* down, detected or not.
    pub fn is_phys_down(&self, node: NodeId) -> bool {
        self.phys_down[node.index()]
    }

    /// Physically-down flags in node order.
    pub fn phys_down_slice(&self) -> &[bool] {
        &self.phys_down
    }

    /// The node's current crash epoch.
    pub fn epoch(&self, node: NodeId) -> u64 {
        self.epochs[node.index()]
    }

    /// Down flags in node order (for bulk masking).
    pub fn down_slice(&self) -> &[bool] {
        &self.down
    }

    /// Whether any fault (down node, degraded link, partition) is active —
    /// the "fault window" that QoS violations are attributed to.
    pub fn any_fault_active(&self) -> bool {
        self.down_count > 0 || self.active_link_faults > 0 || self.partition_active
    }

    /// Register a crash the control plane learns about instantly (the
    /// oracle model): physical and detected flags move together. Returns
    /// `false` (no-op) if the node is already down — churn and timed
    /// events may race benignly.
    pub fn on_crash(&mut self, node: NodeId, now: SimTime, is_master: bool) -> bool {
        if !self.on_phys_crash(node, now, is_master) {
            return false;
        }
        self.down[node.index()] = true;
        true
    }

    /// Register a physical crash that the control plane has *not* yet
    /// detected: the node's containers die and its epoch bumps, but
    /// `is_down` stays `false` until [`FaultState::mark_detected`].
    /// Returns `false` if the node is already physically down.
    pub fn on_phys_crash(&mut self, node: NodeId, now: SimTime, is_master: bool) -> bool {
        let i = node.index();
        if self.phys_down[i] {
            return false;
        }
        self.phys_down[i] = true;
        self.down_since[i] = now;
        self.epochs[i] += 1;
        self.down_count += 1;
        self.summary.node_crashes += 1;
        if is_master {
            self.summary.master_failovers += 1;
        }
        true
    }

    /// Promote a physical crash to detected (the keep-alive detector
    /// tripped). Returns `false` when the node is not physically down or
    /// is already detected.
    pub fn mark_detected(&mut self, node: NodeId) -> bool {
        let i = node.index();
        if !self.phys_down[i] || self.down[i] {
            return false;
        }
        self.down[i] = true;
        true
    }

    /// How long the node has been physically down, for detection-lag
    /// accounting. Meaningless unless [`FaultState::is_phys_down`].
    pub fn down_duration(&self, node: NodeId, now: SimTime) -> SimTime {
        now.saturating_since(self.down_since[node.index()])
    }

    /// Park work interrupted by an undetected crash on the node's limbo
    /// list.
    pub fn push_limbo(&mut self, node: NodeId, items: Vec<(ServiceClass, RequestId)>) {
        self.limbo_run[node.index()].extend(items);
    }

    /// Take (and clear) the node's limbo list — at detection or
    /// recovery, whichever comes first.
    pub fn take_limbo(&mut self, node: NodeId) -> Vec<(ServiceClass, RequestId)> {
        std::mem::take(&mut self.limbo_run[node.index()])
    }

    /// Register a recovery. Returns `false` if the node was not
    /// physically down. Clears both flags: a recovery observed before
    /// detection simply closes the undetected window.
    pub fn on_recover(&mut self, node: NodeId, now: SimTime) -> bool {
        let i = node.index();
        if !self.phys_down[i] {
            return false;
        }
        self.phys_down[i] = false;
        self.down[i] = false;
        self.down_count -= 1;
        self.summary.node_recoveries += 1;
        self.summary.total_downtime += now.saturating_since(self.down_since[i]);
        true
    }

    /// Register a link degradation.
    pub fn on_link_degrade(&mut self) {
        self.active_link_faults += 1;
        self.summary.links_degraded += 1;
    }

    /// Register a link restoration.
    pub fn on_link_restore(&mut self) {
        self.active_link_faults = self.active_link_faults.saturating_sub(1);
        self.summary.links_restored += 1;
    }

    /// Register a partition.
    pub fn on_partition(&mut self) {
        self.partition_active = true;
        self.summary.partitions += 1;
    }

    /// Register a heal.
    pub fn on_heal(&mut self) {
        self.partition_active = false;
        self.summary.heals += 1;
    }

    /// Encode the full fault state for a checkpoint: per-node down flags,
    /// down-since stamps and crash epochs, the active-fault windows and
    /// the cumulative summary.
    pub fn snapshot(&self, w: &mut tango_snap::SnapWriter) {
        use tango_snap::SnapEncode;
        self.down.encode(w);
        self.down_since.encode(w);
        self.epochs.encode(w);
        w.put_u32(self.down_count);
        w.put_u32(self.active_link_faults);
        w.put_bool(self.partition_active);
        self.summary.encode(w);
        self.phys_down.encode(w);
        w.put_u64(self.limbo_run.len() as u64);
        for items in &self.limbo_run {
            w.put_u64(items.len() as u64);
            for (class, rid) in items {
                class.encode(w);
                rid.encode(w);
            }
        }
    }

    /// Restore state captured by [`FaultState::snapshot`]. The node count
    /// must match the one this state was built with.
    pub fn restore(
        &mut self,
        r: &mut tango_snap::SnapReader<'_>,
    ) -> Result<(), tango_snap::SnapError> {
        use tango_snap::{SnapDecode, SnapError};
        let down = Vec::<bool>::decode(r)?;
        let down_since = Vec::<SimTime>::decode(r)?;
        let epochs = Vec::<u64>::decode(r)?;
        if down.len() != self.down.len()
            || down_since.len() != self.down.len()
            || epochs.len() != self.down.len()
        {
            return Err(SnapError::Corrupt("fault state node count"));
        }
        self.down = down;
        self.down_since = down_since;
        self.epochs = epochs;
        self.down_count = r.u32()?;
        self.active_link_faults = r.u32()?;
        self.partition_active = r.bool()?;
        self.summary = crate::FaultSummary::decode(r)?;
        let phys_down = Vec::<bool>::decode(r)?;
        if phys_down.len() != self.down.len() {
            return Err(SnapError::Corrupt("fault state node count"));
        }
        self.phys_down = phys_down;
        let n = r.len_prefix(8)?;
        if n != self.down.len() {
            return Err(SnapError::Corrupt("fault state node count"));
        }
        let mut limbo_run = Vec::with_capacity(n);
        for _ in 0..n {
            let m = r.len_prefix(9)?;
            let mut items = Vec::with_capacity(m);
            for _ in 0..m {
                let class = ServiceClass::decode(r)?;
                items.push((class, RequestId::decode(r)?));
            }
            limbo_run.push(items);
        }
        self.limbo_run = limbo_run;
        Ok(())
    }

    /// Fold downtime of nodes still down at the horizon into the summary.
    pub fn settle(&mut self, horizon: SimTime) {
        for i in 0..self.phys_down.len() {
            if self.phys_down[i] {
                self.summary.total_downtime += horizon.saturating_since(self.down_since[i]);
                // keep the node marked down; settle is terminal
                self.down_since[i] = horizon;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_recover_tracks_downtime_and_epochs() {
        let mut s = FaultState::new(4);
        assert!(!s.any_fault_active());
        assert!(s.on_crash(NodeId(2), SimTime::from_secs(1), false));
        assert!(s.is_down(NodeId(2)));
        assert_eq!(s.epoch(NodeId(2)), 1);
        assert!(s.any_fault_active());
        // duplicate crash is a no-op
        assert!(!s.on_crash(NodeId(2), SimTime::from_secs(2), false));
        assert_eq!(s.summary.node_crashes, 1);
        assert!(s.on_recover(NodeId(2), SimTime::from_secs(4)));
        assert!(!s.is_down(NodeId(2)));
        assert!(!s.any_fault_active());
        assert_eq!(s.summary.total_downtime, SimTime::from_secs(3));
        // recover of an up node is a no-op
        assert!(!s.on_recover(NodeId(2), SimTime::from_secs(5)));
        // a second crash bumps the epoch again
        assert!(s.on_crash(NodeId(2), SimTime::from_secs(6), true));
        assert_eq!(s.epoch(NodeId(2)), 2);
        assert_eq!(s.summary.master_failovers, 1);
    }

    #[test]
    fn undetected_crash_is_invisible_until_marked() {
        let mut s = FaultState::new(2);
        assert!(s.on_phys_crash(NodeId(1), SimTime::from_secs(1), false));
        assert!(s.is_phys_down(NodeId(1)));
        assert!(!s.is_down(NodeId(1)));
        assert_eq!(s.epoch(NodeId(1)), 1);
        assert!(s.any_fault_active());
        s.push_limbo(NodeId(1), vec![(ServiceClass::Lc, RequestId(7))]);
        // detector trips: now visible, limbo drains once
        assert!(s.mark_detected(NodeId(1)));
        assert!(s.is_down(NodeId(1)));
        assert!(!s.mark_detected(NodeId(1)));
        assert_eq!(
            s.down_duration(NodeId(1), SimTime::from_secs(3)),
            SimTime::from_secs(2)
        );
        assert_eq!(
            s.take_limbo(NodeId(1)),
            vec![(ServiceClass::Lc, RequestId(7))]
        );
        assert!(s.take_limbo(NodeId(1)).is_empty());
        assert!(s.on_recover(NodeId(1), SimTime::from_secs(4)));
        assert_eq!(s.summary.total_downtime, SimTime::from_secs(3));
    }

    #[test]
    fn recovery_before_detection_closes_the_window() {
        let mut s = FaultState::new(1);
        s.on_phys_crash(NodeId(0), SimTime::from_secs(1), false);
        assert!(s.on_recover(NodeId(0), SimTime::from_secs(2)));
        assert!(!s.is_down(NodeId(0)));
        assert!(!s.is_phys_down(NodeId(0)));
        assert!(!s.mark_detected(NodeId(0)));
        assert!(!s.any_fault_active());
    }

    #[test]
    fn settle_accounts_open_downtime() {
        let mut s = FaultState::new(2);
        s.on_crash(NodeId(0), SimTime::from_secs(7), false);
        s.settle(SimTime::from_secs(10));
        assert_eq!(s.summary.total_downtime, SimTime::from_secs(3));
    }

    #[test]
    fn link_and_partition_windows_nest() {
        let mut s = FaultState::new(1);
        s.on_link_degrade();
        s.on_partition();
        assert!(s.any_fault_active());
        s.on_link_restore();
        assert!(s.any_fault_active());
        s.on_heal();
        assert!(!s.any_fault_active());
        assert_eq!(
            (
                s.summary.links_degraded,
                s.summary.links_restored,
                s.summary.partitions,
                s.summary.heals
            ),
            (1, 1, 1, 1)
        );
    }
}

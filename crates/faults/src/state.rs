//! Runtime fault bookkeeping: which nodes are down, crash epochs, and the
//! summary the run report surfaces.

use tango_types::{NodeId, SimTime};

/// Aggregated fault accounting for a run. All counters are cumulative;
/// [`FaultState::settle`] folds still-open downtime in at the horizon.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultSummary {
    /// Node crashes executed (idempotent duplicates not counted).
    pub node_crashes: u64,
    /// Node recoveries executed.
    pub node_recoveries: u64,
    /// Crashes that hit a cluster master (failover routing engaged).
    pub master_failovers: u64,
    /// Link degradations applied.
    pub links_degraded: u64,
    /// Link restorations applied.
    pub links_restored: u64,
    /// Partitions applied.
    pub partitions: u64,
    /// Partitions healed.
    pub heals: u64,
    /// LC requests interrupted mid-execution by a crash.
    pub lc_interrupted: u64,
    /// BE requests interrupted mid-execution by a crash.
    pub be_interrupted: u64,
    /// Requests drained out of a crashed node's wait queue.
    pub wait_drained: u64,
    /// In-flight deliveries that bounced off a crashed target.
    pub bounced_deliveries: u64,
    /// Total requests pushed back into scheduling queues because of a
    /// fault (interrupted + drained + bounced); some of these may later
    /// exhaust their requeue budget and fail.
    pub rescheduled: u64,
    /// Dispatch decisions that targeted a down node. The candidate
    /// masking makes this impossible; it is counted (rather than assumed)
    /// so the invariant tests can assert it stays zero.
    pub down_node_dispatches: u64,
    /// Sum of per-node downtime over the run.
    pub total_downtime: SimTime,
    /// LC completions that missed their QoS target while a fault (node
    /// down, link degraded, or partition) was active.
    pub fault_qos_violations: u64,
}

/// Live fault state, indexed by node.
#[derive(Debug, Clone)]
pub struct FaultState {
    down: Vec<bool>,
    down_since: Vec<SimTime>,
    /// Bumped on every crash: deliveries scheduled before the crash carry
    /// the old epoch and are bounced instead of touching post-recovery
    /// reservations.
    epochs: Vec<u64>,
    down_count: u32,
    active_link_faults: u32,
    partition_active: bool,
    /// Cumulative fault accounting.
    pub summary: FaultSummary,
}

impl FaultState {
    /// State for a system of `n_nodes` nodes, all up.
    pub fn new(n_nodes: usize) -> Self {
        FaultState {
            down: vec![false; n_nodes],
            down_since: vec![SimTime::ZERO; n_nodes],
            epochs: vec![0; n_nodes],
            down_count: 0,
            active_link_faults: 0,
            partition_active: false,
            summary: FaultSummary::default(),
        }
    }

    /// Whether a node is currently down.
    pub fn is_down(&self, node: NodeId) -> bool {
        self.down[node.index()]
    }

    /// The node's current crash epoch.
    pub fn epoch(&self, node: NodeId) -> u64 {
        self.epochs[node.index()]
    }

    /// Down flags in node order (for bulk masking).
    pub fn down_slice(&self) -> &[bool] {
        &self.down
    }

    /// Whether any fault (down node, degraded link, partition) is active —
    /// the "fault window" that QoS violations are attributed to.
    pub fn any_fault_active(&self) -> bool {
        self.down_count > 0 || self.active_link_faults > 0 || self.partition_active
    }

    /// Register a crash. Returns `false` (no-op) if the node is already
    /// down — churn and timed events may race benignly.
    pub fn on_crash(&mut self, node: NodeId, now: SimTime, is_master: bool) -> bool {
        let i = node.index();
        if self.down[i] {
            return false;
        }
        self.down[i] = true;
        self.down_since[i] = now;
        self.epochs[i] += 1;
        self.down_count += 1;
        self.summary.node_crashes += 1;
        if is_master {
            self.summary.master_failovers += 1;
        }
        true
    }

    /// Register a recovery. Returns `false` if the node was not down.
    pub fn on_recover(&mut self, node: NodeId, now: SimTime) -> bool {
        let i = node.index();
        if !self.down[i] {
            return false;
        }
        self.down[i] = false;
        self.down_count -= 1;
        self.summary.node_recoveries += 1;
        self.summary.total_downtime += now.saturating_since(self.down_since[i]);
        true
    }

    /// Register a link degradation.
    pub fn on_link_degrade(&mut self) {
        self.active_link_faults += 1;
        self.summary.links_degraded += 1;
    }

    /// Register a link restoration.
    pub fn on_link_restore(&mut self) {
        self.active_link_faults = self.active_link_faults.saturating_sub(1);
        self.summary.links_restored += 1;
    }

    /// Register a partition.
    pub fn on_partition(&mut self) {
        self.partition_active = true;
        self.summary.partitions += 1;
    }

    /// Register a heal.
    pub fn on_heal(&mut self) {
        self.partition_active = false;
        self.summary.heals += 1;
    }

    /// Encode the full fault state for a checkpoint: per-node down flags,
    /// down-since stamps and crash epochs, the active-fault windows and
    /// the cumulative summary.
    pub fn snapshot(&self, w: &mut tango_snap::SnapWriter) {
        use tango_snap::SnapEncode;
        self.down.encode(w);
        self.down_since.encode(w);
        self.epochs.encode(w);
        w.put_u32(self.down_count);
        w.put_u32(self.active_link_faults);
        w.put_bool(self.partition_active);
        self.summary.encode(w);
    }

    /// Restore state captured by [`FaultState::snapshot`]. The node count
    /// must match the one this state was built with.
    pub fn restore(
        &mut self,
        r: &mut tango_snap::SnapReader<'_>,
    ) -> Result<(), tango_snap::SnapError> {
        use tango_snap::{SnapDecode, SnapError};
        let down = Vec::<bool>::decode(r)?;
        let down_since = Vec::<SimTime>::decode(r)?;
        let epochs = Vec::<u64>::decode(r)?;
        if down.len() != self.down.len()
            || down_since.len() != self.down.len()
            || epochs.len() != self.down.len()
        {
            return Err(SnapError::Corrupt("fault state node count"));
        }
        self.down = down;
        self.down_since = down_since;
        self.epochs = epochs;
        self.down_count = r.u32()?;
        self.active_link_faults = r.u32()?;
        self.partition_active = r.bool()?;
        self.summary = crate::FaultSummary::decode(r)?;
        Ok(())
    }

    /// Fold downtime of nodes still down at the horizon into the summary.
    pub fn settle(&mut self, horizon: SimTime) {
        for i in 0..self.down.len() {
            if self.down[i] {
                self.summary.total_downtime += horizon.saturating_since(self.down_since[i]);
                // keep the node marked down; settle is terminal
                self.down_since[i] = horizon;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_recover_tracks_downtime_and_epochs() {
        let mut s = FaultState::new(4);
        assert!(!s.any_fault_active());
        assert!(s.on_crash(NodeId(2), SimTime::from_secs(1), false));
        assert!(s.is_down(NodeId(2)));
        assert_eq!(s.epoch(NodeId(2)), 1);
        assert!(s.any_fault_active());
        // duplicate crash is a no-op
        assert!(!s.on_crash(NodeId(2), SimTime::from_secs(2), false));
        assert_eq!(s.summary.node_crashes, 1);
        assert!(s.on_recover(NodeId(2), SimTime::from_secs(4)));
        assert!(!s.is_down(NodeId(2)));
        assert!(!s.any_fault_active());
        assert_eq!(s.summary.total_downtime, SimTime::from_secs(3));
        // recover of an up node is a no-op
        assert!(!s.on_recover(NodeId(2), SimTime::from_secs(5)));
        // a second crash bumps the epoch again
        assert!(s.on_crash(NodeId(2), SimTime::from_secs(6), true));
        assert_eq!(s.epoch(NodeId(2)), 2);
        assert_eq!(s.summary.master_failovers, 1);
    }

    #[test]
    fn settle_accounts_open_downtime() {
        let mut s = FaultState::new(2);
        s.on_crash(NodeId(0), SimTime::from_secs(7), false);
        s.settle(SimTime::from_secs(10));
        assert_eq!(s.summary.total_downtime, SimTime::from_secs(3));
    }

    #[test]
    fn link_and_partition_windows_nest() {
        let mut s = FaultState::new(1);
        s.on_link_degrade();
        s.on_partition();
        assert!(s.any_fault_active());
        s.on_link_restore();
        assert!(s.any_fault_active());
        s.on_heal();
        assert!(!s.any_fault_active());
        assert_eq!(
            (
                s.summary.links_degraded,
                s.summary.links_restored,
                s.summary.partitions,
                s.summary.heals
            ),
            (1, 1, 1, 1)
        );
    }
}

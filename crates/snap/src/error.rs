//! The typed failure surface of snapshot decoding.

use std::fmt;

/// Why a snapshot could not be decoded or restored.
///
/// Every malformed input maps to one of these variants; decoding never
/// panics. The variants are ordered roughly by how early in parsing they
/// can occur.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapError {
    /// The input ended before a read completed (file cut short, or a
    /// section length pointing past the end).
    Truncated,
    /// The file does not start with the `TNGOSNAP` magic.
    BadMagic,
    /// The format-version word differs from what this build writes.
    VersionMismatch {
        /// Version found in the file.
        found: u16,
        /// Version this build understands.
        expected: u16,
    },
    /// The whole-file FNV-1a checksum did not match — bytes were
    /// corrupted after the snapshot was sealed.
    BadChecksum {
        /// Checksum stored in the file.
        found: u64,
        /// Checksum recomputed over the file body.
        computed: u64,
    },
    /// The snapshot was taken under a different configuration than the
    /// one offered for restore (fingerprints disagree).
    ConfigMismatch {
        /// Fingerprint stored in the snapshot.
        found: u64,
        /// Fingerprint of the configuration offered for restore.
        expected: u64,
    },
    /// Structurally invalid content past the header: a missing section,
    /// an out-of-range discriminant, an impossible count. The payload
    /// names the offending structure.
    Corrupt(&'static str),
    /// The state cannot be snapshotted at all (e.g. an RL policy whose
    /// agent state has no stable serialization). Returned by `snapshot`,
    /// not by decoding.
    Unsupported(&'static str),
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapError::Truncated => write!(f, "snapshot truncated"),
            SnapError::BadMagic => write!(f, "not a tango snapshot (bad magic)"),
            SnapError::VersionMismatch { found, expected } => write!(
                f,
                "snapshot format version {found} (this build reads {expected})"
            ),
            SnapError::BadChecksum { found, computed } => write!(
                f,
                "snapshot checksum mismatch (file {found:#018x}, computed {computed:#018x})"
            ),
            SnapError::ConfigMismatch { found, expected } => write!(
                f,
                "snapshot config fingerprint {found:#018x} does not match offered config {expected:#018x}"
            ),
            SnapError::Corrupt(what) => write!(f, "snapshot corrupt: {what}"),
            SnapError::Unsupported(what) => write!(f, "state not snapshotable: {what}"),
        }
    }
}

impl std::error::Error for SnapError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SnapError::VersionMismatch {
            found: 9,
            expected: 1,
        };
        assert!(e.to_string().contains("version 9"));
        assert!(SnapError::Truncated.to_string().contains("truncated"));
        assert!(SnapError::Corrupt("node count")
            .to_string()
            .contains("node count"));
    }
}

//! Primitive little-endian framing and the `SnapEncode`/`SnapDecode`
//! trait pair.

use crate::SnapError;
use std::collections::VecDeque;

/// An append-only little-endian byte sink.
#[derive(Debug, Default)]
pub struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    /// An empty writer.
    pub fn new() -> Self {
        SnapWriter::default()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consume the writer, yielding its bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Write one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Write a `u16`, little-endian.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write an `i64`, little-endian two's complement.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write an `f64` as its IEEE-754 bit pattern (bit-exact round trip).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Write an `f32` as its IEEE-754 bit pattern.
    pub fn put_f32(&mut self, v: f32) {
        self.put_u32(v.to_bits());
    }

    /// Write a `bool` as one byte (0/1).
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(v as u8);
    }

    /// Write a length-prefixed byte string.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    /// Write a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }

    /// Append raw bytes without a length prefix (framing internals).
    pub(crate) fn put_raw(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }
}

/// A bounds-checked little-endian byte source over a borrowed buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    /// Read from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        SnapReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// `true` when every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        if self.remaining() < n {
            return Err(SnapError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, SnapError> {
        Ok(self.take(1)?[0])
    }

    /// Read a `u16`.
    pub fn u16(&mut self) -> Result<u16, SnapError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Read a `u32`.
    pub fn u32(&mut self) -> Result<u32, SnapError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read a `u64`.
    pub fn u64(&mut self) -> Result<u64, SnapError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read an `i64`.
    pub fn i64(&mut self) -> Result<i64, SnapError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read an `f64` from its bit pattern.
    pub fn f64(&mut self) -> Result<f64, SnapError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Read an `f32` from its bit pattern.
    pub fn f32(&mut self) -> Result<f32, SnapError> {
        Ok(f32::from_bits(self.u32()?))
    }

    /// Read a `bool`; any byte other than 0/1 is corrupt.
    pub fn bool(&mut self) -> Result<bool, SnapError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SnapError::Corrupt("bool byte")),
        }
    }

    /// Read a length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<&'a [u8], SnapError> {
        let n = self.u64()?;
        let n = usize::try_from(n).map_err(|_| SnapError::Truncated)?;
        self.take(n)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<&'a str, SnapError> {
        std::str::from_utf8(self.bytes()?).map_err(|_| SnapError::Corrupt("utf-8 string"))
    }

    /// Read a length prefix that will gate a following loop, rejecting
    /// lengths that could not possibly fit in the remaining bytes (each
    /// element needs at least `min_elem_bytes`). This keeps a corrupted
    /// length from turning into a giant allocation.
    pub fn len_prefix(&mut self, min_elem_bytes: usize) -> Result<usize, SnapError> {
        let n = self.u64()?;
        let n = usize::try_from(n).map_err(|_| SnapError::Truncated)?;
        if n.saturating_mul(min_elem_bytes.max(1)) > self.remaining() {
            return Err(SnapError::Truncated);
        }
        Ok(n)
    }

    /// Fail unless the reader is exactly exhausted — catches section
    /// payloads with trailing garbage.
    pub fn expect_end(&self, what: &'static str) -> Result<(), SnapError> {
        if self.is_empty() {
            Ok(())
        } else {
            Err(SnapError::Corrupt(what))
        }
    }
}

/// A type that can write itself into a [`SnapWriter`].
pub trait SnapEncode {
    /// Append this value's encoding.
    fn encode(&self, w: &mut SnapWriter);
}

/// A type that can reconstruct itself from a [`SnapReader`].
pub trait SnapDecode: Sized {
    /// Read one value, consuming exactly what [`SnapEncode::encode`]
    /// wrote.
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError>;
}

macro_rules! primitive_codec {
    ($ty:ty, $put:ident, $get:ident) => {
        impl SnapEncode for $ty {
            fn encode(&self, w: &mut SnapWriter) {
                w.$put(*self);
            }
        }
        impl SnapDecode for $ty {
            fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
                r.$get()
            }
        }
    };
}

primitive_codec!(u8, put_u8, u8);
primitive_codec!(u16, put_u16, u16);
primitive_codec!(u32, put_u32, u32);
primitive_codec!(u64, put_u64, u64);
primitive_codec!(i64, put_i64, i64);
primitive_codec!(f64, put_f64, f64);
primitive_codec!(f32, put_f32, f32);
primitive_codec!(bool, put_bool, bool);

impl SnapEncode for usize {
    fn encode(&self, w: &mut SnapWriter) {
        w.put_u64(*self as u64);
    }
}
impl SnapDecode for usize {
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        usize::try_from(r.u64()?).map_err(|_| SnapError::Corrupt("usize out of range"))
    }
}

impl SnapEncode for String {
    fn encode(&self, w: &mut SnapWriter) {
        w.put_str(self);
    }
}
impl SnapDecode for String {
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(r.str()?.to_string())
    }
}

impl<T: SnapEncode> SnapEncode for Vec<T> {
    fn encode(&self, w: &mut SnapWriter) {
        w.put_u64(self.len() as u64);
        for v in self {
            v.encode(w);
        }
    }
}
impl<T: SnapDecode> SnapDecode for Vec<T> {
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let n = r.len_prefix(1)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<T: SnapEncode> SnapEncode for VecDeque<T> {
    fn encode(&self, w: &mut SnapWriter) {
        w.put_u64(self.len() as u64);
        for v in self {
            v.encode(w);
        }
    }
}
impl<T: SnapDecode> SnapDecode for VecDeque<T> {
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(Vec::<T>::decode(r)?.into())
    }
}

impl<T: SnapEncode> SnapEncode for Option<T> {
    fn encode(&self, w: &mut SnapWriter) {
        match self {
            None => w.put_u8(0),
            Some(v) => {
                w.put_u8(1);
                v.encode(w);
            }
        }
    }
}
impl<T: SnapDecode> SnapDecode for Option<T> {
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match r.u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            _ => Err(SnapError::Corrupt("option tag")),
        }
    }
}

impl<A: SnapEncode, B: SnapEncode> SnapEncode for (A, B) {
    fn encode(&self, w: &mut SnapWriter) {
        self.0.encode(w);
        self.1.encode(w);
    }
}
impl<A: SnapDecode, B: SnapDecode> SnapDecode for (A, B) {
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

impl<A: SnapEncode, B: SnapEncode, C: SnapEncode> SnapEncode for (A, B, C) {
    fn encode(&self, w: &mut SnapWriter) {
        self.0.encode(w);
        self.1.encode(w);
        self.2.encode(w);
    }
}
impl<A: SnapDecode, B: SnapDecode, C: SnapDecode> SnapDecode for (A, B, C) {
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok((A::decode(r)?, B::decode(r)?, C::decode(r)?))
    }
}

impl<T: SnapEncode, const N: usize> SnapEncode for [T; N] {
    fn encode(&self, w: &mut SnapWriter) {
        for v in self {
            v.encode(w);
        }
    }
}
impl<T: SnapDecode + Copy + Default, const N: usize> SnapDecode for [T; N] {
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let mut out = [T::default(); N];
        for v in out.iter_mut() {
            *v = T::decode(r)?;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = SnapWriter::new();
        w.put_u8(7);
        w.put_u16(0xBEEF);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 3);
        w.put_i64(-42);
        w.put_f64(-0.125);
        w.put_f32(3.5);
        w.put_bool(true);
        w.put_str("hëllo");
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 0xBEEF);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.i64().unwrap(), -42);
        assert_eq!(r.f64().unwrap(), -0.125);
        assert_eq!(r.f32().unwrap(), 3.5);
        assert!(r.bool().unwrap());
        assert_eq!(r.str().unwrap(), "hëllo");
        assert!(r.is_empty());
        r.expect_end("tail").unwrap();
    }

    #[test]
    fn nan_round_trips_bit_exact() {
        let weird = f64::from_bits(0x7ff8_0000_dead_beef);
        let mut w = SnapWriter::new();
        w.put_f64(weird);
        let bytes = w.into_bytes();
        let got = SnapReader::new(&bytes).f64().unwrap();
        assert_eq!(got.to_bits(), weird.to_bits());
    }

    #[test]
    fn reads_past_the_end_are_truncated_not_panics() {
        let mut r = SnapReader::new(&[1, 2, 3]);
        assert_eq!(r.u64(), Err(SnapError::Truncated));
        // the failed read consumed nothing
        assert_eq!(r.remaining(), 3);
        assert_eq!(r.u16().unwrap(), 0x0201);
        assert_eq!(r.u16(), Err(SnapError::Truncated));
    }

    #[test]
    fn containers_round_trip() {
        let v: Vec<u64> = vec![1, 2, 3];
        let d: VecDeque<u32> = vec![9, 8].into();
        let o: Option<String> = Some("x".into());
        let none: Option<u8> = None;
        let pair = (5u64, true);
        let arr = [1u64, 2, 3, 4];
        let mut w = SnapWriter::new();
        v.encode(&mut w);
        d.encode(&mut w);
        o.encode(&mut w);
        none.encode(&mut w);
        pair.encode(&mut w);
        arr.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert_eq!(Vec::<u64>::decode(&mut r).unwrap(), v);
        assert_eq!(VecDeque::<u32>::decode(&mut r).unwrap(), d);
        assert_eq!(Option::<String>::decode(&mut r).unwrap(), o);
        assert_eq!(Option::<u8>::decode(&mut r).unwrap(), none);
        assert_eq!(<(u64, bool)>::decode(&mut r).unwrap(), pair);
        assert_eq!(<[u64; 4]>::decode(&mut r).unwrap(), arr);
        assert!(r.is_empty());
    }

    #[test]
    fn absurd_length_prefix_is_rejected() {
        // a Vec claiming u64::MAX elements must not allocate
        let mut w = SnapWriter::new();
        w.put_u64(u64::MAX);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert_eq!(Vec::<u64>::decode(&mut r), Err(SnapError::Truncated));
    }

    #[test]
    fn bad_tags_are_corrupt() {
        let mut r = SnapReader::new(&[2]);
        assert_eq!(r.bool(), Err(SnapError::Corrupt("bool byte")));
        let mut r = SnapReader::new(&[7, 0]);
        assert_eq!(
            Option::<u8>::decode(&mut r),
            Err(SnapError::Corrupt("option tag"))
        );
    }
}

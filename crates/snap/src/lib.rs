//! `tango-snap`: the hand-rolled versioned binary snapshot codec.
//!
//! The workspace builds offline, so serde is deliberately unavailable
//! (it was dropped in the first performance PR). This crate provides the
//! small, explicit substitute the checkpoint/restore subsystem needs:
//!
//! * [`SnapWriter`] / [`SnapReader`] — little-endian primitive framing
//!   with explicit bounds checks (no panics on malformed input);
//! * [`SnapEncode`] / [`SnapDecode`] — the trait pair every snapshotted
//!   type implements, with blanket impls for primitives, tuples,
//!   `String`, `Vec`, `VecDeque` and `Option`;
//! * [`SnapFileBuilder`] / [`SnapFile`] — whole-file framing: a magic
//!   header, a format-version word, a caller-supplied config
//!   fingerprint, tagged length-prefixed sections, and an FNV-1a
//!   checksum over everything that precedes it;
//! * [`SnapError`] — the typed failure surface. Restoring a truncated,
//!   corrupted or version-bumped snapshot must return one of these,
//!   never panic.
//!
//! The crate is dependency-free on purpose: it sits below `tango-types`
//! in the crate graph so every other crate can implement the traits for
//! its own state without orphan-rule gymnastics.
//!
//! # File layout
//!
//! ```text
//! offset  size  field
//! 0       8     magic  b"TNGOSNAP"
//! 8       2     format version (u16 LE)   — bump on any layout change
//! 10      8     config fingerprint (u64)  — caller-defined compatibility key
//! 18      4     section count (u32)
//! 22      ...   sections: tag (u32) | byte length (u64) | payload
//! end-8   8     FNV-1a checksum over bytes [0, end-8)
//! ```
//!
//! Parsing checks, in order: magic, version, checksum, then section
//! bounds — so a version bump reports [`SnapError::VersionMismatch`]
//! rather than a checksum failure, and every later read is bounds-safe.

#![deny(missing_docs)]

mod error;
mod file;
mod rw;

pub use error::SnapError;
pub use file::{SnapFile, SnapFileBuilder, FORMAT_VERSION, MAGIC};
pub use rw::{SnapDecode, SnapEncode, SnapReader, SnapWriter};

/// FNV-1a offset basis.
pub const FNV_OFFSET: u64 = 0xcbf29ce484222325;
/// FNV-1a prime.
pub const FNV_PRIME: u64 = 0x100000001b3;

/// FNV-1a over `bytes`, starting from the standard offset basis.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    fnv1a_extend(FNV_OFFSET, bytes)
}

/// Continue an FNV-1a fold from an existing hash value.
pub fn fnv1a_extend(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn fnv1a_extend_composes() {
        let whole = fnv1a(b"hello world");
        let split = fnv1a_extend(fnv1a(b"hello "), b"world");
        assert_eq!(whole, split);
    }
}

//! Whole-file framing: magic, version, fingerprint, tagged sections,
//! trailing checksum.

use crate::rw::{SnapReader, SnapWriter};
use crate::{fnv1a, SnapError};

/// The eight magic bytes every snapshot starts with.
pub const MAGIC: [u8; 8] = *b"TNGOSNAP";

/// The format version this build writes and reads. Bump on any change to
/// the file layout or to any section's encoding; decoding a snapshot
/// written under a different version fails with
/// [`SnapError::VersionMismatch`] instead of misreading state.
pub const FORMAT_VERSION: u16 = 4;

/// Builds a sealed snapshot file from tagged sections.
#[derive(Debug)]
pub struct SnapFileBuilder {
    fingerprint: u64,
    sections: Vec<(u32, Vec<u8>)>,
}

impl SnapFileBuilder {
    /// Start a snapshot stamped with a caller-defined configuration
    /// fingerprint (checked again at restore time).
    pub fn new(fingerprint: u64) -> Self {
        SnapFileBuilder {
            fingerprint,
            sections: Vec::new(),
        }
    }

    /// Append one section. `encode` writes the payload; tags should be
    /// unique per file (lookup returns the first match).
    pub fn section(&mut self, tag: u32, encode: impl FnOnce(&mut SnapWriter)) {
        let mut w = SnapWriter::new();
        encode(&mut w);
        self.sections.push((tag, w.into_bytes()));
    }

    /// Seal the file: header, sections, FNV-1a checksum.
    pub fn seal(self) -> Vec<u8> {
        let mut w = SnapWriter::new();
        w.put_raw(&MAGIC);
        w.put_u16(FORMAT_VERSION);
        w.put_u64(self.fingerprint);
        w.put_u32(self.sections.len() as u32);
        for (tag, payload) in &self.sections {
            w.put_u32(*tag);
            w.put_u64(payload.len() as u64);
            w.put_raw(payload);
        }
        let mut bytes = w.into_bytes();
        let checksum = fnv1a(&bytes);
        bytes.extend_from_slice(&checksum.to_le_bytes());
        bytes
    }
}

/// A parsed, checksum-verified snapshot file borrowing its input.
#[derive(Debug, PartialEq, Eq)]
pub struct SnapFile<'a> {
    /// The configuration fingerprint the snapshot was sealed with.
    pub fingerprint: u64,
    sections: Vec<(u32, &'a [u8])>,
}

impl<'a> SnapFile<'a> {
    /// Parse and verify `bytes`. Checks, in order: magic, format
    /// version, whole-file checksum, section bounds.
    pub fn parse(bytes: &'a [u8]) -> Result<Self, SnapError> {
        if bytes.len() < MAGIC.len() {
            return Err(SnapError::Truncated);
        }
        if bytes[..MAGIC.len()] != MAGIC {
            return Err(SnapError::BadMagic);
        }
        // magic(8) + version(2) + fingerprint(8) + count(4) + checksum(8)
        if bytes.len() < 30 {
            return Err(SnapError::Truncated);
        }
        let version = u16::from_le_bytes(bytes[8..10].try_into().unwrap());
        if version != FORMAT_VERSION {
            return Err(SnapError::VersionMismatch {
                found: version,
                expected: FORMAT_VERSION,
            });
        }
        let body = &bytes[..bytes.len() - 8];
        let found = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().unwrap());
        let computed = fnv1a(body);
        if found != computed {
            return Err(SnapError::BadChecksum { found, computed });
        }
        let mut r = SnapReader::new(&body[10..]);
        let fingerprint = r.u64()?;
        let count = r.u32()? as usize;
        let mut sections = Vec::with_capacity(count.min(1024));
        for _ in 0..count {
            let tag = r.u32()?;
            let len = usize::try_from(r.u64()?).map_err(|_| SnapError::Truncated)?;
            if len > r.remaining() {
                return Err(SnapError::Truncated);
            }
            let payload = r.take(len)?;
            sections.push((tag, payload));
        }
        r.expect_end("trailing bytes after last section")?;
        Ok(SnapFile {
            fingerprint,
            sections,
        })
    }

    /// A reader over the payload of the section with `tag`.
    pub fn section(&self, tag: u32, what: &'static str) -> Result<SnapReader<'a>, SnapError> {
        self.sections
            .iter()
            .find(|(t, _)| *t == tag)
            .map(|(_, p)| SnapReader::new(p))
            .ok_or(SnapError::Corrupt(what))
    }

    /// Tags present in this file, in file order.
    pub fn tags(&self) -> Vec<u32> {
        self.sections.iter().map(|(t, _)| *t).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        let mut b = SnapFileBuilder::new(0xFEED_FACE_CAFE_BEEF);
        b.section(1, |w| w.put_u64(42));
        b.section(2, |w| w.put_str("state"));
        b.seal()
    }

    #[test]
    fn round_trip() {
        let bytes = sample();
        let f = SnapFile::parse(&bytes).unwrap();
        assert_eq!(f.fingerprint, 0xFEED_FACE_CAFE_BEEF);
        assert_eq!(f.tags(), vec![1, 2]);
        assert_eq!(f.section(1, "one").unwrap().u64().unwrap(), 42);
        assert_eq!(f.section(2, "two").unwrap().str().unwrap(), "state");
        assert_eq!(
            f.section(9, "missing section nine"),
            Err(SnapError::Corrupt("missing section nine"))
        );
    }

    #[test]
    fn bad_magic_detected() {
        let mut bytes = sample();
        bytes[0] = b'X';
        assert_eq!(SnapFile::parse(&bytes), Err(SnapError::BadMagic));
    }

    #[test]
    fn version_bump_detected_before_checksum() {
        let mut bytes = sample();
        bytes[8] = 99; // version word, checksum left stale on purpose
        assert_eq!(
            SnapFile::parse(&bytes),
            Err(SnapError::VersionMismatch {
                found: 99,
                expected: FORMAT_VERSION
            })
        );
    }

    #[test]
    fn corruption_fails_checksum() {
        let mut bytes = sample();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        assert!(matches!(
            SnapFile::parse(&bytes),
            Err(SnapError::BadChecksum { .. })
        ));
    }

    #[test]
    fn truncation_detected() {
        let bytes = sample();
        for cut in [0, 4, 12, bytes.len() - 1] {
            let err = SnapFile::parse(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, SnapError::Truncated | SnapError::BadChecksum { .. }),
                "cut at {cut} gave {err:?}"
            );
        }
    }

    #[test]
    fn section_length_past_end_is_truncated() {
        // hand-build a file whose single section claims more bytes than exist
        let mut w = SnapWriter::new();
        w.put_raw(&MAGIC);
        w.put_u16(FORMAT_VERSION);
        w.put_u64(0);
        w.put_u32(1);
        w.put_u32(7); // tag
        w.put_u64(1_000_000); // length lie
        let mut bytes = w.into_bytes();
        let checksum = fnv1a(&bytes);
        bytes.extend_from_slice(&checksum.to_le_bytes());
        assert_eq!(SnapFile::parse(&bytes), Err(SnapError::Truncated));
    }

    #[test]
    fn empty_file_is_truncated() {
        assert_eq!(SnapFile::parse(&[]), Err(SnapError::Truncated));
    }
}

//! Nodes and the processor-sharing execution model.
//!
//! A node owns a CGroup tree and a set of continuously-running service
//! pods. Request execution follows the model the paper's twin space is
//! calibrated with: a request of service k carries `work` millicore-
//! milliseconds of CPU work; the requests inside a container share its
//! *effective* CPU limit equally, each capped by its own CPU demand
//! (a request cannot exploit more parallelism than it asked for). Memory
//! and disk are charged to the container's cgroup for the request's whole
//! residency — that is what makes them incompressible.
//!
//! The node is advanced lazily: [`Node::advance`] integrates progress
//! since the last call at the *current* rates, so any limit change (D-VPA)
//! or admission simply requires advancing first. A generation counter lets
//! the event loop discard stale completion projections.

use crate::pod::{qos_level_for, Container, Pod};
use tango_cgroup::{CgroupFs, CgroupId, QosLevel};
use tango_types::FxHashMap;
use tango_types::{
    ClusterId, ContainerId, NodeId, PodId, RequestId, Resources, ServiceClass, ServiceId,
    ServiceSpec, SimTime, TangoError,
};

/// A request currently executing in a container.
#[derive(Debug, Clone)]
pub struct RunningRequest {
    /// The request.
    pub request: RequestId,
    /// Its resource demand (CPU share cap + incompressible charges).
    pub demand: Resources,
    /// Remaining CPU work, millicore-milliseconds.
    pub remaining_work: f64,
    /// When it was admitted to the container.
    pub admitted_at: SimTime,
}

/// A finished request as reported by [`Node::take_completions`].
#[derive(Debug, Clone)]
pub struct CompletedRequest {
    /// The request.
    pub request: RequestId,
    /// Its service type.
    pub service: ServiceId,
    /// LC or BE.
    pub class: ServiceClass,
    /// When it was admitted.
    pub admitted_at: SimTime,
}

#[derive(Debug)]
struct ContainerState {
    meta: Container,
    running: Vec<RunningRequest>,
    /// Set while a native-VPA rebuild (or eviction restart) is in flight.
    unavailable_until: SimTime,
    /// Cached effective limit, valid while `eff_epoch` matches the cgroup
    /// tree's limit epoch. The execution integrator reads the effective
    /// limit on every advance/projection; limits only move on D-VPA or
    /// rebuild events, so this hits almost always.
    eff: Resources,
    eff_epoch: u64,
}

/// A master or worker node.
#[derive(Debug)]
pub struct Node {
    /// Global node id.
    pub id: NodeId,
    /// Owning cluster.
    pub cluster: ClusterId,
    /// Masters receive requests; workers execute them.
    pub is_master: bool,
    capacity: Resources,
    /// The node's CGroup tree (public: D-VPA writes it directly).
    pub cgroups: CgroupFs,
    pods: FxHashMap<PodId, Pod>,
    /// Container states, dense in deployment order (== ascending id order,
    /// since local ids are allocated sequentially). The execution
    /// integrator walks this on every advance/projection, so it must be a
    /// flat scan, not a hash-map iteration.
    containers: Vec<ContainerState>,
    index: FxHashMap<ContainerId, usize>,
    by_service: FxHashMap<ServiceId, usize>,
    /// Requests currently running across all containers — the early-out
    /// for advance/projection on idle nodes.
    running_total: usize,
    last_advance: SimTime,
    generation: u64,
    next_local_id: u64,
    finished: Vec<CompletedRequest>,
    /// Last sync tick at which this node answered its keep-alive probe.
    /// Observational only (read by the control-plane mirror); it is not
    /// part of the node's snapshot codec, so a restored run re-learns
    /// heartbeats from its first sync tick.
    last_heartbeat: SimTime,
}

/// The container's effective limit through the per-container cache.
fn cached_eff(cgroups: &CgroupFs, state: &mut ContainerState) -> Resources {
    let epoch = cgroups.limit_epoch();
    if state.eff_epoch != epoch {
        state.eff = cgroups.effective_limit(state.meta.cgroup);
        state.eff_epoch = epoch;
    }
    state.eff
}

/// Remaining work below this is "done" (guards float dust).
const WORK_EPSILON: f64 = 1e-6;

impl Node {
    /// Create a node with the given allocatable capacity.
    pub fn new(id: NodeId, cluster: ClusterId, is_master: bool, capacity: Resources) -> Self {
        Node {
            id,
            cluster,
            is_master,
            capacity,
            cgroups: CgroupFs::new(capacity),
            pods: FxHashMap::default(),
            containers: Vec::new(),
            index: FxHashMap::default(),
            by_service: FxHashMap::default(),
            running_total: 0,
            last_advance: SimTime::ZERO,
            generation: 0,
            next_local_id: 0,
            finished: Vec::new(),
            last_heartbeat: SimTime::ZERO,
        }
    }

    /// Record that the node answered a keep-alive probe at `now`.
    pub fn record_heartbeat(&mut self, now: SimTime) {
        self.last_heartbeat = now;
    }

    /// Last sync tick at which the node answered a keep-alive probe.
    pub fn last_heartbeat(&self) -> SimTime {
        self.last_heartbeat
    }

    /// Allocatable capacity.
    pub fn capacity(&self) -> Resources {
        self.capacity
    }

    /// Monotone counter bumped whenever completion projections may have
    /// changed (admission, completion, limit writes go through
    /// [`Node::touch`]).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Record that something changed that invalidates projections.
    pub fn touch(&mut self) {
        self.generation += 1;
    }

    fn alloc_ids(&mut self) -> (PodId, ContainerId) {
        let seq = self.next_local_id;
        self.next_local_id += 1;
        let base = (self.id.raw() as u64) << 32 | seq;
        (PodId(base), ContainerId(base))
    }

    /// Deploy a continuously-running service pod with an initial resource
    /// limit. LC services land in the Burstable QoS group, BE in
    /// BestEffort.
    pub fn deploy_service(
        &mut self,
        spec: &ServiceSpec,
        initial_limit: Resources,
        now: SimTime,
    ) -> Result<ContainerId, TangoError> {
        if self.by_service.contains_key(&spec.id) {
            return Err(TangoError::Config(format!(
                "service {} already deployed on {}",
                spec.id, self.id
            )));
        }
        let qos = qos_level_for(spec.class);
        let (pod_id, ctr_id) = self.alloc_ids();
        let qos_group = self.cgroups.qos_group(qos);
        let pod_cg = self.cgroups.create(
            now,
            qos_group,
            &format!("pod{:x}", pod_id.raw()),
            initial_limit,
        )?;
        let ctr_cg = self.cgroups.create(
            now,
            pod_cg,
            &format!("ctr{:x}", ctr_id.raw()),
            initial_limit,
        )?;
        let pod = Pod {
            id: pod_id,
            service: spec.id,
            qos,
            cgroup: pod_cg,
            container: ctr_id,
        };
        let meta = Container {
            id: ctr_id,
            pod: pod_id,
            service: spec.id,
            class: spec.class,
            cgroup: ctr_cg,
            restarts: 0,
        };
        self.pods.insert(pod_id, pod);
        let slot = self.containers.len();
        self.containers.push(ContainerState {
            meta,
            running: Vec::new(),
            unavailable_until: SimTime::ZERO,
            eff: Resources::ZERO,
            eff_epoch: 0,
        });
        self.index.insert(ctr_id, slot);
        self.by_service.insert(spec.id, slot);
        self.touch();
        Ok(ctr_id)
    }

    fn state(&self, id: ContainerId) -> Option<&ContainerState> {
        self.index.get(&id).map(|&i| &self.containers[i])
    }

    fn state_mut(&mut self, id: ContainerId) -> Option<&mut ContainerState> {
        self.index.get(&id).map(|&i| &mut self.containers[i])
    }

    /// Container hosting a service, if deployed.
    pub fn container_for(&self, service: ServiceId) -> Option<ContainerId> {
        self.by_service
            .get(&service)
            .map(|&i| self.containers[i].meta.id)
    }

    /// Container metadata.
    pub fn container(&self, id: ContainerId) -> Option<&Container> {
        self.state(id).map(|c| &c.meta)
    }

    /// The pod owning a container.
    pub fn pod_of(&self, ctr: ContainerId) -> Option<&Pod> {
        self.state(ctr).and_then(|c| self.pods.get(&c.meta.pod))
    }

    /// All deployed containers (deterministic order by id — local ids are
    /// allocated sequentially, so deployment order is id order).
    pub fn container_ids(&self) -> Vec<ContainerId> {
        self.containers.iter().map(|c| c.meta.id).collect()
    }

    /// Requests running in a container.
    pub fn running_in(&self, ctr: ContainerId) -> &[RunningRequest] {
        self.state(ctr).map(|c| c.running.as_slice()).unwrap_or(&[])
    }

    /// Whether the container can accept requests at `now` (not mid-rebuild).
    pub fn is_available(&self, ctr: ContainerId, now: SimTime) -> bool {
        self.state(ctr)
            .map(|c| c.unavailable_until <= now)
            .unwrap_or(false)
    }

    /// Mark a container unavailable until `until` (rebuild in progress).
    pub fn set_unavailable_until(&mut self, ctr: ContainerId, until: SimTime) {
        if let Some(c) = self.state_mut(ctr) {
            c.unavailable_until = until;
            self.generation += 1;
        }
    }

    /// Effective CPU limit of a container (min over its cgroup path).
    pub fn effective_cpu(&self, ctr: ContainerId) -> u64 {
        self.state(ctr)
            .map(|c| self.cgroups.effective_limit(c.meta.cgroup).cpu_milli)
            .unwrap_or(0)
    }

    /// Per-request execution rate (millicores) inside a container with `m`
    /// occupants: equal share of the effective limit, capped by the
    /// request's own CPU demand.
    fn rate(eff_cpu: u64, m: usize, demand_cpu: u64) -> f64 {
        if m == 0 || eff_cpu == 0 {
            return 0.0;
        }
        let share = eff_cpu as f64 / m as f64;
        share.min(demand_cpu.max(1) as f64)
    }

    /// Integrate execution progress from `last_advance` to `now` at the
    /// current limits, moving finished requests to the completion buffer.
    pub fn advance(&mut self, now: SimTime) {
        if now <= self.last_advance {
            return;
        }
        let dt_ms = (now - self.last_advance).as_micros() as f64 / 1_000.0;
        self.last_advance = now;
        if self.running_total == 0 {
            return;
        }
        let mut any_done = false;
        let cgroups = &self.cgroups;
        for state in &mut self.containers {
            let m = state.running.len();
            if m == 0 {
                continue;
            }
            let eff = cached_eff(cgroups, state).cpu_milli;
            for r in &mut state.running {
                let rate = Self::rate(eff, m, r.demand.cpu_milli);
                r.remaining_work -= rate * dt_ms;
                if r.remaining_work <= WORK_EPSILON {
                    any_done = true;
                }
            }
        }
        if any_done {
            // collect completions: remove, uncharge incompressibles
            let Node {
                containers,
                cgroups,
                finished,
                running_total,
                ..
            } = self;
            for state in containers.iter_mut() {
                let mut i = 0;
                while i < state.running.len() {
                    if state.running[i].remaining_work <= WORK_EPSILON {
                        let r = state.running.swap_remove(i);
                        *running_total -= 1;
                        let (_, incompressible) = r.demand.split_compressible();
                        cgroups.uncharge(state.meta.cgroup, incompressible);
                        finished.push(CompletedRequest {
                            request: r.request,
                            service: state.meta.service,
                            class: state.meta.class,
                            admitted_at: r.admitted_at,
                        });
                    } else {
                        i += 1;
                    }
                }
            }
            self.generation += 1;
        }
    }

    /// Drain the completion buffer (requests that finished during
    /// [`Node::advance`]).
    pub fn take_completions(&mut self) -> Vec<CompletedRequest> {
        std::mem::take(&mut self.finished)
    }

    /// Admit a request into its service container. Charges the
    /// incompressible part of the demand to the container cgroup; fails if
    /// the service is not deployed, the container is rebuilding, or the
    /// memory/disk charge does not fit.
    pub fn admit(
        &mut self,
        request: RequestId,
        service: ServiceId,
        demand: Resources,
        work_milli_ms: u64,
        now: SimTime,
    ) -> Result<(), TangoError> {
        self.advance(now);
        let slot = self.by_service.get(&service).copied().ok_or_else(|| {
            TangoError::Unschedulable(format!("{service} not deployed on {}", self.id))
        })?;
        let state = &self.containers[slot];
        if state.unavailable_until > now {
            return Err(TangoError::Unschedulable(format!(
                "container {} rebuilding until {}",
                state.meta.id, state.unavailable_until
            )));
        }
        let (_, incompressible) = demand.split_compressible();
        self.cgroups.charge(state.meta.cgroup, incompressible)?;
        self.containers[slot].running.push(RunningRequest {
            request,
            demand,
            remaining_work: work_milli_ms as f64,
            admitted_at: now,
        });
        self.running_total += 1;
        self.generation += 1;
        Ok(())
    }

    /// Admit a request that already ran elsewhere: same admission rules
    /// as [`Node::admit`], but the remaining work is the fractional
    /// residue carried over by a migration rather than the service's
    /// nominal work. The caller must have advanced the source node and
    /// detached the request there first.
    pub fn admit_migrated(
        &mut self,
        request: RequestId,
        service: ServiceId,
        demand: Resources,
        remaining_work: f64,
        now: SimTime,
    ) -> Result<(), TangoError> {
        self.advance(now);
        let slot = self.by_service.get(&service).copied().ok_or_else(|| {
            TangoError::Unschedulable(format!("{service} not deployed on {}", self.id))
        })?;
        let state = &self.containers[slot];
        if state.unavailable_until > now {
            return Err(TangoError::Unschedulable(format!(
                "container {} rebuilding until {}",
                state.meta.id, state.unavailable_until
            )));
        }
        let (_, incompressible) = demand.split_compressible();
        self.cgroups.charge(state.meta.cgroup, incompressible)?;
        self.containers[slot].running.push(RunningRequest {
            request,
            demand,
            remaining_work: remaining_work.max(WORK_EPSILON),
            admitted_at: now,
        });
        self.running_total += 1;
        self.generation += 1;
        Ok(())
    }

    /// Detach one running request for migration: integrate progress to
    /// `now`, remove it from its container, uncharge its incompressibles,
    /// and hand back the [`RunningRequest`] with its residual work. The
    /// request is gone from this node the instant this returns — a later
    /// crash of this node cannot touch it. `None` if the request is not
    /// running here.
    pub fn detach_request(&mut self, request: RequestId, now: SimTime) -> Option<RunningRequest> {
        self.advance(now);
        for state in &mut self.containers {
            if let Some(i) = state.running.iter().position(|r| r.request == request) {
                let r = state.running.remove(i);
                self.running_total -= 1;
                let (_, incompressible) = r.demand.split_compressible();
                self.cgroups.uncharge(state.meta.cgroup, incompressible);
                self.generation += 1;
                return Some(r);
            }
        }
        None
    }

    /// Earliest projected completion time across all containers at current
    /// rates (call after [`Node::advance`]). `None` when nothing is
    /// running or every runnable rate is zero.
    pub fn next_completion(&mut self, now: SimTime) -> Option<SimTime> {
        if self.running_total == 0 {
            return None;
        }
        let mut best: Option<SimTime> = None;
        let cgroups = &self.cgroups;
        for state in &mut self.containers {
            let m = state.running.len();
            if m == 0 {
                continue;
            }
            let eff = cached_eff(cgroups, state).cpu_milli;
            for r in &state.running {
                let rate = Self::rate(eff, m, r.demand.cpu_milli);
                if rate <= 0.0 {
                    continue;
                }
                let ms = (r.remaining_work / rate).max(0.0);
                let t = now + SimTime::from_micros((ms * 1_000.0).ceil() as u64);
                best = Some(best.map_or(t, |b: SimTime| b.min(t)));
            }
        }
        best
    }

    /// Kill a container: interrupt all running requests (uncharging them)
    /// and mark the container unavailable until `ready_at`. Returns the
    /// interrupted requests — the caller decides whether to requeue or
    /// fail them. Used by the native VPA's delete-and-rebuild and by BE
    /// eviction under the §4.1 regulations.
    pub fn kill_container(
        &mut self,
        ctr: ContainerId,
        now: SimTime,
        ready_at: SimTime,
    ) -> Result<Vec<RunningRequest>, TangoError> {
        self.advance(now);
        let slot = self
            .index
            .get(&ctr)
            .copied()
            .ok_or(TangoError::UnknownContainer(ctr))?;
        let state = &mut self.containers[slot];
        let interrupted = std::mem::take(&mut state.running);
        self.running_total -= interrupted.len();
        let state = &mut self.containers[slot];
        let cg = state.meta.cgroup;
        state.meta.restarts += 1;
        state.unavailable_until = ready_at;
        for r in &interrupted {
            let (_, incompressible) = r.demand.split_compressible();
            self.cgroups.uncharge(cg, incompressible);
        }
        self.generation += 1;
        Ok(interrupted)
    }

    /// Crash the node: every container is killed (interrupting all
    /// running requests, uncharging their incompressibles, bumping
    /// restart counts) and left unavailable until recovery re-arms it.
    /// Returns the interrupted requests with their service class — the
    /// system decides whether each one fails or is rescheduled.
    pub fn crash(&mut self, now: SimTime) -> Vec<(ServiceClass, RunningRequest)> {
        let mut out = Vec::new();
        for ctr in self.container_ids() {
            let class = self
                .container(ctr)
                .map(|c| c.class)
                .unwrap_or(ServiceClass::Be);
            if let Ok(interrupted) = self.kill_container(ctr, now, SimTime::MAX) {
                out.extend(interrupted.into_iter().map(|r| (class, r)));
            }
        }
        out
    }

    /// Bring a crashed node back: every container restarts cold and
    /// starts accepting work `restart_delay` after `now` (the eviction-
    /// restart interplay — a recovering node looks exactly like one whose
    /// containers were all just rebuilt).
    pub fn recover(&mut self, now: SimTime, restart_delay: SimTime) {
        self.advance(now);
        let ready = now + restart_delay;
        for ctr in self.container_ids() {
            self.set_unavailable_until(ctr, ready);
        }
    }

    /// Demand-based usage: (LC-held, BE-held) resources summed over
    /// running requests. This is what the state storage reports and the
    /// §4.1 regulations reason over.
    pub fn demand_usage(&self) -> (Resources, Resources) {
        let mut lc = Resources::ZERO;
        let mut be = Resources::ZERO;
        for state in &self.containers {
            for r in &state.running {
                match state.meta.class {
                    ServiceClass::Lc => lc += r.demand,
                    ServiceClass::Be => be += r.demand,
                }
            }
        }
        (lc, be)
    }

    /// Actual resource consumption: per container, CPU is the sum of the
    /// processor-sharing *rates* (so a throttled container reports its
    /// limit, not its queued demand), bandwidth is capped by the effective
    /// limit, and memory/disk are the charged cgroup usage. This is what a
    /// Prometheus scrape of the node would see, and what utilization
    /// figures must report — demand-based accounting would count
    /// congestion as usage.
    pub fn actual_usage(&self) -> (Resources, Resources) {
        let mut lc = Resources::ZERO;
        let mut be = Resources::ZERO;
        for state in &self.containers {
            let m = state.running.len();
            if m == 0 {
                continue;
            }
            let eff = self.cgroups.effective_limit(state.meta.cgroup);
            let cpu_used: f64 = state
                .running
                .iter()
                .map(|r| Self::rate(eff.cpu_milli, m, r.demand.cpu_milli))
                .sum();
            let bw_demand: u64 = state.running.iter().map(|r| r.demand.bandwidth_mbps).sum();
            let charged = self.cgroups.usage(state.meta.cgroup);
            let used = Resources {
                cpu_milli: (cpu_used.round() as u64).min(eff.cpu_milli),
                memory_mib: charged.memory_mib,
                bandwidth_mbps: bw_demand.min(eff.bandwidth_mbps),
                disk_mib: charged.disk_mib,
            };
            match state.meta.class {
                ServiceClass::Lc => lc += used,
                ServiceClass::Be => be += used,
            }
        }
        (lc, be)
    }

    /// Idle resources: capacity − LC-held − BE-held (saturating).
    pub fn idle(&self) -> Resources {
        let (lc, be) = self.demand_usage();
        self.capacity.saturating_sub(&lc).saturating_sub(&be)
    }

    /// Overall utilization in [0, 1] (demand-based, averaged over CPU and
    /// memory).
    pub fn utilization(&self) -> f64 {
        let (lc, be) = self.demand_usage();
        (lc + be).utilization_against(&self.capacity)
    }

    /// Number of requests currently running on the node.
    pub fn running_count(&self) -> usize {
        self.running_total
    }

    /// The BE requests currently running on the node, in container
    /// deployment order then admission order — the deterministic pod list
    /// the defragmentation planner consumes.
    pub fn running_be_pods(&self) -> impl Iterator<Item = (RequestId, ServiceId, Resources)> + '_ {
        self.containers
            .iter()
            .filter(|s| s.meta.class == ServiceClass::Be)
            .flat_map(|s| {
                s.running
                    .iter()
                    .map(|r| (r.request, s.meta.service, r.demand))
            })
    }

    /// QoS level of a container's pod.
    pub fn qos_of(&self, ctr: ContainerId) -> Option<QosLevel> {
        self.pod_of(ctr).map(|p| p.qos)
    }

    // --- checkpoint plumbing (see the `snapshot` module) ---

    pub(crate) fn snap_last_advance(&self) -> SimTime {
        self.last_advance
    }

    pub(crate) fn snap_next_local_id(&self) -> u64 {
        self.next_local_id
    }

    pub(crate) fn snap_finished(&self) -> &[CompletedRequest] {
        &self.finished
    }

    pub(crate) fn snap_unavailable_until(&self, ctr: ContainerId) -> SimTime {
        self.state(ctr)
            .map(|c| c.unavailable_until)
            .unwrap_or(SimTime::ZERO)
    }

    pub(crate) fn snap_apply(
        &mut self,
        last_advance: SimTime,
        generation: u64,
        next_local_id: u64,
        finished: Vec<CompletedRequest>,
    ) {
        self.last_advance = last_advance;
        self.generation = generation;
        self.next_local_id = next_local_id;
        self.finished = finished;
    }

    pub(crate) fn snap_apply_container(
        &mut self,
        ctr: ContainerId,
        restarts: u32,
        unavailable_until: SimTime,
        running: Vec<RunningRequest>,
    ) -> Result<(), tango_snap::SnapError> {
        let slot = self
            .index
            .get(&ctr)
            .copied()
            .ok_or(tango_snap::SnapError::Corrupt("unknown container id"))?;
        let state = &mut self.containers[slot];
        self.running_total -= state.running.len();
        self.running_total += running.len();
        state.meta.restarts = restarts;
        state.unavailable_until = unavailable_until;
        state.running = running;
        Ok(())
    }

    /// The pod-level and container-level cgroups for a service — the two
    /// write targets of a D-VPA scaling operation (Fig. 5).
    pub fn scaling_cgroups(&self, service: ServiceId) -> Option<(CgroupId, CgroupId)> {
        let ctr = self.container_for(service)?;
        let pod = self.pod_of(ctr)?;
        let c = self.state(ctr)?;
        Some((pod.cgroup, c.meta.cgroup))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(id: u16, class: ServiceClass, cpu: u64, mem: u64, work: u64) -> ServiceSpec {
        ServiceSpec {
            id: ServiceId(id),
            name: format!("svc{id}"),
            class,
            min_request: Resources::cpu_mem(cpu, mem),
            work_milli_ms: work,
            qos_target: SimTime::from_millis(300),
            payload_kib: 64,
        }
    }

    fn node_with_service() -> (Node, ContainerId, ServiceSpec) {
        let mut n = Node::new(
            NodeId(1),
            ClusterId(0),
            false,
            Resources::new(4_000, 8_192, 1_000, 50_000),
        );
        let s = spec(0, ServiceClass::Lc, 500, 256, 50_000); // 100ms at 500m
        let ctr = n
            .deploy_service(&s, Resources::new(1_000, 1_024, 100, 1_000), SimTime::ZERO)
            .unwrap();
        (n, ctr, s)
    }

    #[test]
    fn deploy_creates_pod_and_container_cgroups() {
        let (n, ctr, s) = node_with_service();
        assert_eq!(n.container_for(s.id), Some(ctr));
        let (pod_cg, ctr_cg) = n.scaling_cgroups(s.id).unwrap();
        assert_ne!(pod_cg, ctr_cg);
        assert!(n.cgroups.path(ctr_cg).starts_with("kubepods/burstable/pod"));
        assert_eq!(n.qos_of(ctr), Some(QosLevel::Burstable));
    }

    #[test]
    fn duplicate_deploy_rejected() {
        let (mut n, _ctr, s) = node_with_service();
        assert!(n
            .deploy_service(&s, Resources::cpu_mem(100, 100), SimTime::ZERO)
            .is_err());
    }

    #[test]
    fn crash_interrupts_everything_and_recover_rearms_after_delay() {
        let (mut n, ctr, s) = node_with_service();
        n.admit(
            RequestId(1),
            s.id,
            s.min_request,
            s.work_milli_ms,
            SimTime::ZERO,
        )
        .unwrap();
        let gen_before = n.generation();
        let interrupted = n.crash(SimTime::from_millis(10));
        assert_eq!(interrupted.len(), 1);
        assert_eq!(interrupted[0].0, ServiceClass::Lc);
        assert_eq!(interrupted[0].1.request, RequestId(1));
        assert!(n.generation() > gen_before);
        // down: no container accepts work, nothing completes
        assert!(!n.is_available(ctr, SimTime::from_secs(1_000)));
        assert_eq!(n.next_completion(SimTime::from_secs(1)), None);
        // recover: cold restart, ready after the delay
        n.recover(SimTime::from_secs(2), SimTime::from_millis(200));
        assert!(!n.is_available(ctr, SimTime::from_secs(2)));
        assert!(n.is_available(ctr, SimTime::from_secs(2) + SimTime::from_millis(200)));
    }

    #[test]
    fn single_request_completes_at_nominal_time() {
        let (mut n, _ctr, s) = node_with_service();
        // demand 500m; container limit 1000m; share=1000 capped at 500
        n.admit(
            RequestId(1),
            s.id,
            s.min_request,
            s.work_milli_ms,
            SimTime::ZERO,
        )
        .unwrap();
        let proj = n.next_completion(SimTime::ZERO).unwrap();
        assert_eq!(proj, SimTime::from_millis(100));
        n.advance(SimTime::from_millis(100));
        let done = n.take_completions();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].request, RequestId(1));
    }

    #[test]
    fn two_requests_share_the_limit() {
        let (mut n, ctr, s) = node_with_service();
        // shrink container (and pod) to 500m so two requests contend:
        let (pod_cg, ctr_cg) = n.scaling_cgroups(s.id).unwrap();
        let lim = Resources::new(500, 1_024, 100, 1_000);
        n.cgroups.set_limit(SimTime::ZERO, ctr_cg, lim).unwrap();
        n.cgroups.set_limit(SimTime::ZERO, pod_cg, lim).unwrap();
        n.admit(
            RequestId(1),
            s.id,
            s.min_request,
            s.work_milli_ms,
            SimTime::ZERO,
        )
        .unwrap();
        n.admit(
            RequestId(2),
            s.id,
            s.min_request,
            s.work_milli_ms,
            SimTime::ZERO,
        )
        .unwrap();
        // each gets 250m -> 200ms
        assert_eq!(
            n.next_completion(SimTime::ZERO).unwrap(),
            SimTime::from_millis(200)
        );
        assert_eq!(n.running_in(ctr).len(), 2);
    }

    #[test]
    fn rate_is_capped_by_demand() {
        let (mut n, _ctr, s) = node_with_service();
        // limit 1000m, single request demanding 500m: rate stays 500m
        n.admit(
            RequestId(1),
            s.id,
            s.min_request,
            s.work_milli_ms,
            SimTime::ZERO,
        )
        .unwrap();
        assert_eq!(
            n.next_completion(SimTime::ZERO).unwrap(),
            SimTime::from_millis(100)
        );
    }

    #[test]
    fn dvpa_style_expansion_speeds_up_in_flight_requests() {
        let (mut n, _ctr, s) = node_with_service();
        let lim = Resources::new(500, 1_024, 100, 1_000);
        let (pod_cg, ctr_cg) = n.scaling_cgroups(s.id).unwrap();
        n.cgroups.set_limit(SimTime::ZERO, ctr_cg, lim).unwrap();
        n.cgroups.set_limit(SimTime::ZERO, pod_cg, lim).unwrap();
        n.admit(
            RequestId(1),
            s.id,
            s.min_request,
            s.work_milli_ms,
            SimTime::ZERO,
        )
        .unwrap();
        n.admit(
            RequestId(2),
            s.id,
            s.min_request,
            s.work_milli_ms,
            SimTime::ZERO,
        )
        .unwrap();
        // run 100ms at 250m each: half the work left
        n.advance(SimTime::from_millis(100));
        assert!(n.take_completions().is_empty());
        // expand pod then container to 1000m (ordered like D-VPA)
        let big = Resources::new(1_000, 1_024, 100, 1_000);
        n.cgroups
            .set_limit(SimTime::from_millis(100), pod_cg, big)
            .unwrap();
        n.cgroups
            .set_limit(SimTime::from_millis(100), ctr_cg, big)
            .unwrap();
        n.touch();
        // each now runs at 500m: remaining 25_000 mcore·ms -> 50ms
        assert_eq!(
            n.next_completion(SimTime::from_millis(100)).unwrap(),
            SimTime::from_millis(150)
        );
        n.advance(SimTime::from_millis(150));
        assert_eq!(n.take_completions().len(), 2);
    }

    #[test]
    fn memory_admission_is_enforced() {
        let (mut n, _ctr, s) = node_with_service();
        // container mem limit 1024 MiB; each request charges 256 MiB
        for i in 0..4 {
            n.admit(
                RequestId(i),
                s.id,
                s.min_request,
                s.work_milli_ms,
                SimTime::ZERO,
            )
            .unwrap();
        }
        let err = n
            .admit(
                RequestId(9),
                s.id,
                s.min_request,
                s.work_milli_ms,
                SimTime::ZERO,
            )
            .unwrap_err();
        assert!(matches!(err, TangoError::InsufficientResources { .. }));
    }

    #[test]
    fn kill_container_interrupts_and_blocks_admission() {
        let (mut n, ctr, s) = node_with_service();
        n.admit(
            RequestId(1),
            s.id,
            s.min_request,
            s.work_milli_ms,
            SimTime::ZERO,
        )
        .unwrap();
        let ready = SimTime::from_millis(2_300);
        let interrupted = n
            .kill_container(ctr, SimTime::from_millis(10), ready)
            .unwrap();
        assert_eq!(interrupted.len(), 1);
        assert_eq!(n.running_count(), 0);
        assert!(!n.is_available(ctr, SimTime::from_millis(100)));
        assert!(n
            .admit(
                RequestId(2),
                s.id,
                s.min_request,
                s.work_milli_ms,
                SimTime::from_millis(100)
            )
            .is_err());
        // after rebuild completes, admission works again
        assert!(n.is_available(ctr, ready));
        n.admit(RequestId(3), s.id, s.min_request, s.work_milli_ms, ready)
            .unwrap();
        assert_eq!(n.container(ctr).unwrap().restarts, 1);
        // memory was uncharged on kill: still admissible to the limit
        assert_eq!(n.running_count(), 1);
    }

    #[test]
    fn demand_usage_splits_classes_and_idle_subtracts() {
        let (mut n, _ctr, s) = node_with_service();
        let be = spec(1, ServiceClass::Be, 400, 512, 1_000_000);
        n.deploy_service(
            &be,
            Resources::new(2_000, 4_096, 100, 10_000),
            SimTime::ZERO,
        )
        .unwrap();
        n.admit(
            RequestId(1),
            s.id,
            s.min_request,
            s.work_milli_ms,
            SimTime::ZERO,
        )
        .unwrap();
        n.admit(
            RequestId(2),
            be.id,
            be.min_request,
            be.work_milli_ms,
            SimTime::ZERO,
        )
        .unwrap();
        let (lc, beu) = n.demand_usage();
        assert_eq!(lc.cpu_milli, 500);
        assert_eq!(beu.cpu_milli, 400);
        assert_eq!(n.idle().cpu_milli, 4_000 - 900);
        assert!(n.utilization() > 0.0);
    }

    #[test]
    fn detach_carries_residual_work_and_admit_migrated_resumes_it() {
        let (mut n, ctr, s) = node_with_service();
        n.admit(
            RequestId(1),
            s.id,
            s.min_request,
            s.work_milli_ms,
            SimTime::ZERO,
        )
        .unwrap();
        // half the 100 ms nominal runtime elapses before the detach
        let r = n
            .detach_request(RequestId(1), SimTime::from_millis(50))
            .expect("running request detaches");
        assert_eq!(r.request, RequestId(1));
        assert!(
            (r.remaining_work - 25_000.0).abs() < 1.0,
            "{}",
            r.remaining_work
        );
        assert_eq!(n.running_count(), 0);
        assert_eq!(n.running_in(ctr).len(), 0);
        // incompressibles were uncharged: the container can fill up again
        for i in 0..4 {
            n.admit(
                RequestId(10 + i),
                s.id,
                s.min_request,
                s.work_milli_ms,
                SimTime::from_millis(50),
            )
            .unwrap();
        }
        // a second detach of the same id finds nothing
        assert!(n
            .detach_request(RequestId(1), SimTime::from_millis(51))
            .is_none());

        // the destination resumes from the residue, not the nominal work
        let (mut dst, _ctr2, s2) = node_with_service();
        dst.admit_migrated(
            r.request,
            s2.id,
            r.demand,
            r.remaining_work,
            SimTime::from_millis(60),
        )
        .unwrap();
        // 25_000 mcore·ms at 500 m -> 50 ms
        assert_eq!(
            dst.next_completion(SimTime::from_millis(60)).unwrap(),
            SimTime::from_millis(110)
        );
    }

    #[test]
    fn unknown_service_admission_fails() {
        let (mut n, _ctr, _s) = node_with_service();
        assert!(matches!(
            n.admit(
                RequestId(1),
                ServiceId(42),
                Resources::cpu_mem(1, 1),
                10,
                SimTime::ZERO
            ),
            Err(TangoError::Unschedulable(_))
        ));
    }

    #[test]
    fn generation_bumps_on_changes() {
        let (mut n, _ctr, s) = node_with_service();
        let g0 = n.generation();
        n.admit(
            RequestId(1),
            s.id,
            s.min_request,
            s.work_milli_ms,
            SimTime::ZERO,
        )
        .unwrap();
        assert!(n.generation() > g0);
        let g1 = n.generation();
        n.advance(SimTime::from_millis(100)); // completion occurs
        assert!(n.generation() > g1);
    }

    #[test]
    fn zero_cpu_limit_stalls_but_does_not_panic() {
        let (mut n, _ctr, s) = node_with_service();
        let (pod_cg, ctr_cg) = n.scaling_cgroups(s.id).unwrap();
        n.admit(
            RequestId(1),
            s.id,
            s.min_request,
            s.work_milli_ms,
            SimTime::ZERO,
        )
        .unwrap();
        let zero = Resources::new(0, 1_024, 100, 1_000);
        n.cgroups.set_limit(SimTime::ZERO, ctr_cg, zero).unwrap();
        n.cgroups.set_limit(SimTime::ZERO, pod_cg, zero).unwrap();
        assert_eq!(n.next_completion(SimTime::ZERO), None);
        n.advance(SimTime::from_secs(10));
        assert!(n.take_completions().is_empty());
    }
}

//! The K8s Horizontal Pod Autoscaler, behaviour-level.
//!
//! §2.1: "Horizontal scaling, which adjusts the number of instances as
//! part of autoscaling, is relatively time-consuming for millisecond-level
//! LC services due to long container start-up time." This model exists to
//! make that comparison concrete: it reproduces the HPA control loop
//! (desired = ceil(current × observed/target), stabilization window,
//! min/max clamps) and charges the container start-up delay for every
//! scale-up — so a bench can show the reaction-time gap against D-VPA's
//! 23 ms vertical adjustments.

use tango_types::SimTime;

/// HPA configuration (mirrors the v2 autoscaler's core fields).
#[derive(Debug, Clone)]
pub struct HpaConfig {
    /// Target utilization of the scaled metric, in (0, 1].
    pub target_utilization: f64,
    /// Minimum replicas.
    pub min_replicas: u32,
    /// Maximum replicas.
    pub max_replicas: u32,
    /// Scale-*down* stabilization window (K8s default 300 s; shortened in
    /// simulations).
    pub stabilization: SimTime,
    /// Time for a new replica to become ready (container start-up).
    pub startup_delay: SimTime,
}

impl Default for HpaConfig {
    fn default() -> Self {
        HpaConfig {
            target_utilization: 0.6,
            min_replicas: 1,
            max_replicas: 16,
            stabilization: SimTime::from_secs(30),
            startup_delay: SimTime::from_millis(2_300),
        }
    }
}

/// A replica that has been ordered but is still starting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PendingReplica {
    /// When it becomes ready.
    pub ready_at: SimTime,
}

/// One service's horizontal autoscaler state.
#[derive(Debug, Clone)]
pub struct Hpa {
    cfg: HpaConfig,
    ready: u32,
    pending: Vec<PendingReplica>,
    last_scale_down: SimTime,
}

impl Hpa {
    /// Start with `initial` ready replicas.
    pub fn new(cfg: HpaConfig, initial: u32) -> Self {
        let ready = initial.clamp(cfg.min_replicas, cfg.max_replicas);
        Hpa {
            cfg,
            ready,
            pending: Vec::new(),
            last_scale_down: SimTime::ZERO,
        }
    }

    /// Replicas currently serving traffic at `now` (promotes finished
    /// pending starts).
    pub fn ready_replicas(&mut self, now: SimTime) -> u32 {
        let newly_ready = self.pending.iter().filter(|p| p.ready_at <= now).count() as u32;
        self.pending.retain(|p| p.ready_at > now);
        self.ready = (self.ready + newly_ready).min(self.cfg.max_replicas);
        self.ready
    }

    /// Replicas ordered but not yet ready.
    pub fn pending_replicas(&self) -> u32 {
        self.pending.len() as u32
    }

    /// The HPA reconcile step: given observed utilization (of the ready
    /// replicas) at `now`, possibly order a scale-up (paying the start-up
    /// delay) or apply a scale-down (immediate, but rate-limited by the
    /// stabilization window). Returns the desired replica count.
    pub fn reconcile(&mut self, observed_utilization: f64, now: SimTime) -> u32 {
        let ready = self.ready_replicas(now);
        let in_flight = ready + self.pending_replicas();
        let desired = if observed_utilization <= 0.0 {
            self.cfg.min_replicas
        } else {
            // ceil(current × observed / target), the HPA v2 formula
            let raw = (ready as f64 * observed_utilization / self.cfg.target_utilization).ceil();
            (raw as u32).clamp(self.cfg.min_replicas, self.cfg.max_replicas)
        };
        if desired > in_flight {
            for _ in 0..(desired - in_flight) {
                self.pending.push(PendingReplica {
                    ready_at: now + self.cfg.startup_delay,
                });
            }
        } else if desired < ready {
            // scale-down only after the stabilization window
            if now.saturating_since(self.last_scale_down) >= self.cfg.stabilization {
                self.ready = desired;
                self.last_scale_down = now;
            }
        }
        desired
    }

    /// Time until the autoscaler can actually absorb a utilization spike:
    /// the earliest instant at which a replica ordered *now* serves
    /// traffic. This is the §2.1 argument in one number.
    pub fn reaction_time(&self) -> SimTime {
        self.cfg.startup_delay
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hpa() -> Hpa {
        Hpa::new(HpaConfig::default(), 2)
    }

    #[test]
    fn scale_up_orders_pending_replicas_with_startup_delay() {
        let mut h = hpa();
        let now = SimTime::from_secs(1);
        // 2 ready at 1.2 observed vs 0.6 target -> desired ceil(2·1.2/0.6)=4
        let desired = h.reconcile(1.2, now);
        assert_eq!(desired, 4);
        assert_eq!(h.pending_replicas(), 2);
        // not ready yet
        assert_eq!(h.ready_replicas(now + SimTime::from_millis(100)), 2);
        // ready after the 2.3s start-up
        assert_eq!(h.ready_replicas(now + SimTime::from_millis(2_300)), 4);
        assert_eq!(h.pending_replicas(), 0);
    }

    #[test]
    fn scale_down_respects_stabilization_window() {
        let mut h = hpa();
        // idle: desired = min replicas, but first scale-down already
        // happened at t=0, so within the window nothing shrinks
        let early = SimTime::from_secs(5);
        h.reconcile(0.01, early);
        assert_eq!(h.ready_replicas(early), 2);
        // after the window, shrink applies
        let later = SimTime::from_secs(40);
        h.reconcile(0.01, later);
        assert_eq!(h.ready_replicas(later), 1);
    }

    #[test]
    fn clamps_at_min_and_max() {
        let mut h = Hpa::new(
            HpaConfig {
                max_replicas: 3,
                ..HpaConfig::default()
            },
            2,
        );
        let desired = h.reconcile(10.0, SimTime::from_secs(1));
        assert_eq!(desired, 3);
        assert_eq!(h.pending_replicas(), 1);
        // zero load clamps to min
        let mut h2 = hpa();
        assert_eq!(h2.reconcile(0.0, SimTime::from_secs(100)), 1);
    }

    #[test]
    fn no_duplicate_orders_while_pending() {
        let mut h = hpa();
        let now = SimTime::from_secs(1);
        h.reconcile(1.2, now); // orders 2
        h.reconcile(1.2, now + SimTime::from_millis(10)); // already in flight
        assert_eq!(h.pending_replicas(), 2);
    }

    #[test]
    fn reaction_time_is_the_startup_delay() {
        let h = hpa();
        assert_eq!(h.reaction_time(), SimTime::from_millis(2_300));
        // two orders of magnitude slower than D-VPA's 23 ms op: the §2.1
        // argument for vertical, in-place scaling at the edge.
        assert!(h.reaction_time().as_millis() / 23 == 100);
    }
}

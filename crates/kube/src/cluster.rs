//! Edge-cloud clusters: a master node plus workers, with the LC and BE
//! scheduling queues the master maintains (§3 "Operation" step 1).

use std::collections::VecDeque;
use tango_types::{ClusterId, NodeId, Request, ServiceClass};

/// One edge-cloud cluster.
#[derive(Debug)]
pub struct Cluster {
    /// Cluster id.
    pub id: ClusterId,
    /// The master node (edge access point / controller).
    pub master: NodeId,
    /// Worker nodes, in id order.
    pub workers: Vec<NodeId>,
    /// Pending LC requests awaiting the LC traffic dispatcher.
    pub lc_queue: VecDeque<Request>,
    /// Pending BE requests awaiting forwarding to the central dispatcher.
    pub be_queue: VecDeque<Request>,
}

impl Cluster {
    /// Create a cluster over pre-allocated node ids.
    pub fn new(id: ClusterId, master: NodeId, workers: Vec<NodeId>) -> Self {
        Cluster {
            id,
            master,
            workers,
            lc_queue: VecDeque::new(),
            be_queue: VecDeque::new(),
        }
    }

    /// Route an incoming request into the right queue.
    pub fn enqueue(&mut self, request: Request) {
        match request.class {
            ServiceClass::Lc => self.lc_queue.push_back(request),
            ServiceClass::Be => self.be_queue.push_back(request),
        }
    }

    /// Total queued requests.
    pub fn queued(&self) -> usize {
        self.lc_queue.len() + self.be_queue.len()
    }

    /// Drain the LC queue for a dispatch round.
    pub fn drain_lc(&mut self) -> Vec<Request> {
        self.lc_queue.drain(..).collect()
    }

    /// Drain the BE queue for forwarding to the central cluster.
    pub fn drain_be(&mut self) -> Vec<Request> {
        self.be_queue.drain(..).collect()
    }

    /// All node ids (master first).
    pub fn node_ids(&self) -> Vec<NodeId> {
        let mut v = Vec::with_capacity(self.workers.len() + 1);
        v.push(self.master);
        v.extend_from_slice(&self.workers);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tango_types::{RequestId, Resources, ServiceId, SimTime};

    fn req(id: u64, class: ServiceClass) -> Request {
        Request::new(
            RequestId(id),
            ServiceId(0),
            class,
            ClusterId(0),
            SimTime::ZERO,
            Resources::cpu_mem(100, 64),
        )
    }

    #[test]
    fn enqueue_routes_by_class() {
        let mut c = Cluster::new(ClusterId(0), NodeId(0), vec![NodeId(1), NodeId(2)]);
        c.enqueue(req(1, ServiceClass::Lc));
        c.enqueue(req(2, ServiceClass::Be));
        c.enqueue(req(3, ServiceClass::Lc));
        assert_eq!(c.lc_queue.len(), 2);
        assert_eq!(c.be_queue.len(), 1);
        assert_eq!(c.queued(), 3);
    }

    #[test]
    fn drains_preserve_fifo() {
        let mut c = Cluster::new(ClusterId(0), NodeId(0), vec![]);
        for i in 0..5 {
            c.enqueue(req(i, ServiceClass::Lc));
        }
        let drained = c.drain_lc();
        let ids: Vec<u64> = drained.iter().map(|r| r.id.raw()).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
        assert_eq!(c.queued(), 0);
    }

    #[test]
    fn node_ids_lists_master_first() {
        let c = Cluster::new(ClusterId(3), NodeId(10), vec![NodeId(11), NodeId(12)]);
        assert_eq!(c.node_ids(), vec![NodeId(10), NodeId(11), NodeId(12)]);
    }
}

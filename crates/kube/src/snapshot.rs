//! Checkpoint encoding for per-node dynamic state.
//!
//! A node's *structure* — which services are deployed, pod/container ids,
//! cgroup paths — is rebuilt deterministically from the config, so a
//! snapshot carries only what the run changed: the execution clock and
//! generation counter, in-flight requests per container, restart counts,
//! availability windows, the undrained completion buffer, and the full
//! cgroup table (which does hold structure, because limits and charges at
//! tick T are not derivable from the config).

use crate::node::{CompletedRequest, Node, RunningRequest};
use tango_snap::{SnapDecode, SnapEncode, SnapError, SnapReader, SnapWriter};
use tango_types::{ContainerId, RequestId, Resources, ServiceClass, ServiceId, SimTime};

impl SnapEncode for RunningRequest {
    fn encode(&self, w: &mut SnapWriter) {
        self.request.encode(w);
        self.demand.encode(w);
        w.put_f64(self.remaining_work);
        self.admitted_at.encode(w);
    }
}
impl SnapDecode for RunningRequest {
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(RunningRequest {
            request: RequestId::decode(r)?,
            demand: Resources::decode(r)?,
            remaining_work: r.f64()?,
            admitted_at: SimTime::decode(r)?,
        })
    }
}

impl SnapEncode for CompletedRequest {
    fn encode(&self, w: &mut SnapWriter) {
        self.request.encode(w);
        self.service.encode(w);
        self.class.encode(w);
        self.admitted_at.encode(w);
    }
}
impl SnapDecode for CompletedRequest {
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(CompletedRequest {
            request: RequestId::decode(r)?,
            service: ServiceId::decode(r)?,
            class: ServiceClass::decode(r)?,
            admitted_at: SimTime::decode(r)?,
        })
    }
}

impl Node {
    /// Encode everything a run can have changed on this node.
    pub fn snapshot_dynamic(&self, w: &mut SnapWriter) {
        self.snap_last_advance().encode(w);
        w.put_u64(self.generation());
        w.put_u64(self.snap_next_local_id());
        self.snap_finished().to_vec().encode(w);
        let ids = self.container_ids();
        w.put_u64(ids.len() as u64);
        for ctr in ids {
            ctr.encode(w);
            let c = self.container(ctr).expect("listed container exists");
            w.put_u32(c.restarts);
            self.snap_unavailable_until(ctr).encode(w);
            self.running_in(ctr).to_vec().encode(w);
        }
        self.cgroups.snapshot(w);
    }

    /// Overlay a [`Node::snapshot_dynamic`] payload onto a freshly built
    /// node with the same deployed services.
    pub fn restore_dynamic(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let last_advance = SimTime::decode(r)?;
        let generation = r.u64()?;
        let next_local_id = r.u64()?;
        let finished = Vec::<CompletedRequest>::decode(r)?;
        let n_ctrs = r.u64()? as usize;
        if n_ctrs != self.container_ids().len() {
            return Err(SnapError::Corrupt("node container count"));
        }
        let mut overlays = Vec::with_capacity(n_ctrs);
        for _ in 0..n_ctrs {
            let ctr = ContainerId::decode(r)?;
            let restarts = r.u32()?;
            let until = SimTime::decode(r)?;
            let running = Vec::<RunningRequest>::decode(r)?;
            overlays.push((ctr, restarts, until, running));
        }
        self.snap_apply(last_advance, generation, next_local_id, finished);
        for (ctr, restarts, until, running) in overlays {
            self.snap_apply_container(ctr, restarts, until, running)?;
        }
        self.cgroups.restore(r)?;
        Ok(())
    }
}

//! Pods and containers.
//!
//! Each application is instantiated in a single container inside its own
//! pod (§6.2), and the pod runs continuously serving requests of its
//! service type (footnote 3: "fixed types of containerized applications
//! … run continuously on the edge-clouds").

use tango_cgroup::{CgroupId, QosLevel};
use tango_types::{ContainerId, PodId, ServiceClass, ServiceId};

/// The K8s QoS class Tango assigns a service (§4.1: LC services get a
/// higher priority class than BE).
pub fn qos_level_for(class: ServiceClass) -> QosLevel {
    match class {
        // Burstable so D-VPA can stretch limits above requests.
        ServiceClass::Lc => QosLevel::Burstable,
        // Lowest priority: first to be evicted under memory pressure.
        ServiceClass::Be => QosLevel::BestEffort,
    }
}

/// A pod: the smallest K8s scheduling unit. One service container each.
#[derive(Debug, Clone)]
pub struct Pod {
    /// Pod id.
    pub id: PodId,
    /// The service it hosts.
    pub service: ServiceId,
    /// Its QoS class directory.
    pub qos: QosLevel,
    /// Pod-level cgroup.
    pub cgroup: CgroupId,
    /// The single container.
    pub container: ContainerId,
}

/// A container executing requests of one service type.
#[derive(Debug, Clone)]
pub struct Container {
    /// Container id.
    pub id: ContainerId,
    /// Owning pod.
    pub pod: PodId,
    /// Service type.
    pub service: ServiceId,
    /// LC or BE.
    pub class: ServiceClass,
    /// Container-level cgroup.
    pub cgroup: CgroupId,
    /// Times this container has been killed and restarted (evictions +
    /// native-VPA rebuilds).
    pub restarts: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qos_mapping_matches_regulations() {
        assert_eq!(qos_level_for(ServiceClass::Lc), QosLevel::Burstable);
        assert_eq!(qos_level_for(ServiceClass::Be), QosLevel::BestEffort);
    }
}

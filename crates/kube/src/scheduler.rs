//! The K8s-native dispatch baseline: round-robin with a feasibility
//! filter.
//!
//! §2.1/§7.2: "K8s only provides simplistic policies such as round-robin",
//! used in the evaluation as the *K8s-native* baseline for both LC and BE
//! requests. We keep the one nod to reality kube-scheduler has: a node
//! must pass the resource-fit predicate before being picked.

use tango_types::{NodeId, Resources};

/// Round-robin node selection state.
#[derive(Debug, Clone, Default)]
pub struct RoundRobin {
    next: usize,
}

impl RoundRobin {
    /// Fresh round-robin cursor.
    pub fn new() -> Self {
        RoundRobin::default()
    }

    /// Pick the next node (in `candidates` order) whose reported free
    /// resources fit `demand`. Advances the cursor past the chosen node.
    /// Returns `None` when no candidate fits.
    pub fn pick(
        &mut self,
        candidates: &[(NodeId, Resources)],
        demand: &Resources,
    ) -> Option<NodeId> {
        if candidates.is_empty() {
            return None;
        }
        let n = candidates.len();
        for off in 0..n {
            let i = (self.next + off) % n;
            let (node, free) = &candidates[i];
            if demand.fits_within(free) {
                self.next = (i + 1) % n;
                return Some(*node);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(id: u32, cpu: u64) -> (NodeId, Resources) {
        (NodeId(id), Resources::cpu_mem(cpu, 10_000))
    }

    #[test]
    fn cycles_through_feasible_nodes() {
        let mut rr = RoundRobin::new();
        let cands = [c(0, 1_000), c(1, 1_000), c(2, 1_000)];
        let demand = Resources::cpu_mem(100, 10);
        let picks: Vec<u32> = (0..6)
            .map(|_| rr.pick(&cands, &demand).unwrap().raw())
            .collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn skips_nodes_that_do_not_fit() {
        let mut rr = RoundRobin::new();
        let cands = [c(0, 50), c(1, 1_000), c(2, 50)];
        let demand = Resources::cpu_mem(100, 10);
        let picks: Vec<u32> = (0..3)
            .map(|_| rr.pick(&cands, &demand).unwrap().raw())
            .collect();
        assert_eq!(picks, vec![1, 1, 1]);
    }

    #[test]
    fn no_fit_returns_none() {
        let mut rr = RoundRobin::new();
        let cands = [c(0, 50)];
        assert_eq!(rr.pick(&cands, &Resources::cpu_mem(100, 10)), None);
        assert_eq!(rr.pick(&[], &Resources::ZERO), None);
    }
}

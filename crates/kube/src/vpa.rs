//! The stock K8s Vertical Pod Autoscaler: delete-and-rebuild scaling.
//!
//! §4.2 "Pain Points": the K8s resource list cannot be modified while
//! containers run, so the K8s-VPA plugin deletes the pod and recreates it
//! with the new limits — interrupting everything in flight and leaving the
//! service dark for the container start-up time. The paper measures
//! D-VPA's 23 ms per scaling operation as "a significant reduction … by a
//! factor of approximately 100"; we model the rebuild at that ~100× mark
//! (2.3 s), which is a typical cold container start on edge hardware.

use crate::node::{Node, RunningRequest};
use tango_types::{Resources, ServiceId, SimTime, TangoError};

/// The delete-and-rebuild vertical scaler.
#[derive(Debug, Clone)]
pub struct NativeVpa {
    /// How long the pod is unavailable while being rebuilt.
    pub rebuild_delay: SimTime,
}

impl Default for NativeVpa {
    fn default() -> Self {
        NativeVpa {
            rebuild_delay: SimTime::from_millis(2_300),
        }
    }
}

/// Result of a delete-and-rebuild scaling operation.
#[derive(Debug)]
pub struct RebuildOutcome {
    /// Requests that were interrupted and need requeueing (or failing).
    pub interrupted: Vec<RunningRequest>,
    /// When the rebuilt pod becomes available again.
    pub ready_at: SimTime,
}

impl NativeVpa {
    /// Scale `service` on `node` to `new_limit` the K8s-VPA way: kill the
    /// pod, rewrite the limits while it is down, and report when it will
    /// be back.
    pub fn scale(
        &self,
        node: &mut Node,
        service: ServiceId,
        new_limit: Resources,
        now: SimTime,
    ) -> Result<RebuildOutcome, TangoError> {
        let ctr = node
            .container_for(service)
            .ok_or_else(|| TangoError::Unschedulable(format!("{service} not on {}", node.id)))?;
        let ready_at = now + self.rebuild_delay;
        let interrupted = node.kill_container(ctr, now, ready_at)?;
        // With the container empty, limits can be written in any order;
        // shrink-safe order (container then pod) keeps the cgroup
        // invariants happy for both directions.
        let (pod_cg, ctr_cg) = node
            .scaling_cgroups(service)
            .ok_or(TangoError::UnknownContainer(ctr))?;
        let cur_pod = node.cgroups.limit(pod_cg);
        if new_limit.fits_within(&cur_pod) {
            node.cgroups.set_limit(now, ctr_cg, new_limit)?;
            node.cgroups.set_limit(now, pod_cg, new_limit)?;
        } else {
            node.cgroups.set_limit(now, pod_cg, new_limit)?;
            node.cgroups.set_limit(now, ctr_cg, new_limit)?;
        }
        node.touch();
        Ok(RebuildOutcome {
            interrupted,
            ready_at,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tango_types::{ClusterId, NodeId, RequestId, ServiceClass, ServiceSpec};

    fn setup() -> (Node, ServiceSpec) {
        let mut n = Node::new(
            NodeId(1),
            ClusterId(0),
            false,
            Resources::new(4_000, 8_192, 1_000, 50_000),
        );
        let s = ServiceSpec {
            id: tango_types::ServiceId(0),
            name: "svc".into(),
            class: ServiceClass::Lc,
            min_request: Resources::cpu_mem(500, 256),
            work_milli_ms: 50_000,
            qos_target: SimTime::from_millis(300),
            payload_kib: 64,
        };
        n.deploy_service(&s, Resources::new(1_000, 1_024, 100, 1_000), SimTime::ZERO)
            .unwrap();
        (n, s)
    }

    #[test]
    fn scaling_interrupts_and_delays() {
        let (mut n, s) = setup();
        n.admit(
            RequestId(1),
            s.id,
            s.min_request,
            s.work_milli_ms,
            SimTime::ZERO,
        )
        .unwrap();
        let vpa = NativeVpa::default();
        let out = vpa
            .scale(
                &mut n,
                s.id,
                Resources::new(2_000, 2_048, 200, 2_000),
                SimTime::from_millis(10),
            )
            .unwrap();
        assert_eq!(out.interrupted.len(), 1);
        assert_eq!(out.ready_at, SimTime::from_millis(2_310));
        // new limit took effect
        let ctr = n.container_for(s.id).unwrap();
        assert_eq!(n.effective_cpu(ctr), 2_000);
        // unavailable until rebuild completes
        assert!(!n.is_available(ctr, SimTime::from_millis(2_000)));
        assert!(n.is_available(ctr, out.ready_at));
    }

    #[test]
    fn shrink_also_works() {
        let (mut n, s) = setup();
        let vpa = NativeVpa::default();
        let out = vpa
            .scale(
                &mut n,
                s.id,
                Resources::new(250, 512, 50, 500),
                SimTime::ZERO,
            )
            .unwrap();
        assert!(out.interrupted.is_empty());
        let ctr = n.container_for(s.id).unwrap();
        assert_eq!(n.effective_cpu(ctr), 250);
    }

    #[test]
    fn unknown_service_errors() {
        let (mut n, _s) = setup();
        let vpa = NativeVpa::default();
        assert!(vpa
            .scale(
                &mut n,
                tango_types::ServiceId(9),
                Resources::ZERO,
                SimTime::ZERO
            )
            .is_err());
    }
}

//! A behaviour-level Kubernetes model.
//!
//! The paper's "twin space" (§6.1) simulates 100 of its 104 edge-cloud
//! clusters at the K8s *API behaviour* level: nodes, pods and containers
//! with real resource semantics, but no physical container instances —
//! request processing times come from a pressure-measured service-time
//! model. This crate is that twin space, extended to cover all clusters:
//!
//! * [`node::Node`] — a worker/master with a CGroup tree
//!   ([`tango_cgroup::CgroupFs`]), one continuously-running service pod per
//!   deployed service (paper footnote 3), and a **processor-sharing
//!   execution model**: requests inside a container share its effective
//!   CPU limit equally, each capped at its own demand, so shrinking a
//!   container's quota stretches its requests' latencies exactly the way
//!   CFS throttling does.
//! * [`pod`] — pods and containers with K8s QoS classes (LC → Burstable,
//!   BE → BestEffort under the §4.1 regulations).
//! * [`vpa::NativeVpa`] — the stock K8s Vertical Pod Autoscaler's
//!   delete-and-rebuild scaling (§4.2 "Pain Points"): interrupts running
//!   requests and leaves the pod unavailable for the container start-up
//!   time. D-VPA (in `tango-hrm`) is the paper's replacement.
//! * [`cluster::Cluster`] — master + workers with LC/BE scheduling queues.
//! * [`scheduler::RoundRobin`] — the K8s-native default dispatch baseline.

pub mod cluster;
pub mod hpa;
pub mod node;
pub mod pod;
pub mod scheduler;
pub mod snapshot;
pub mod vpa;

pub use cluster::Cluster;
pub use hpa::{Hpa, HpaConfig};
pub use node::{CompletedRequest, Node, RunningRequest};
pub use pod::{Container, Pod};
pub use scheduler::RoundRobin;
pub use vpa::NativeVpa;

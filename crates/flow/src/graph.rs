//! Flow-network representation.
//!
//! Standard paired-edge layout: every directed edge is stored next to its
//! reverse edge (`id ^ 1`), so residual updates are O(1). Capacities and
//! flows are `i64`; costs are `i64` per unit of flow.

/// Reference to a directed edge in a [`FlowGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EdgeRef(pub(crate) usize);

#[derive(Debug, Clone, Copy)]
pub(crate) struct Edge {
    pub to: usize,
    pub cap: i64,
    pub cost: i64,
    pub flow: i64,
}

/// A directed flow network.
///
/// The adjacency storage is pooled: [`FlowGraph::reset`] keeps the
/// allocated edge vector and per-node adjacency lists around so a caller
/// that rebuilds a similarly-shaped graph every dispatch round (DSS-LC
/// does, per request type per tick) performs no heap allocation in
/// steady state.
#[derive(Debug, Default)]
pub struct FlowGraph {
    pub(crate) edges: Vec<Edge>,
    /// Adjacency rows; only the first `n_nodes` are live. Rows beyond
    /// `n_nodes` are retained empty so their capacity can be reused.
    pub(crate) adj: Vec<Vec<usize>>,
    n_nodes: usize,
}

impl Clone for FlowGraph {
    fn clone(&self) -> Self {
        FlowGraph {
            edges: self.edges.clone(),
            adj: self.adj.clone(),
            n_nodes: self.n_nodes,
        }
    }

    fn clone_from(&mut self, source: &Self) {
        // Vec::clone_from reuses existing buffers (element-wise for the
        // nested adjacency rows), so repeated clone_from into the same
        // target is allocation-free once warm.
        self.edges.clone_from(&source.edges);
        self.adj.clone_from(&source.adj);
        self.n_nodes = source.n_nodes;
    }
}

impl FlowGraph {
    /// Create a graph with `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        FlowGraph {
            edges: Vec::new(),
            adj: vec![Vec::new(); n],
            n_nodes: n,
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.n_nodes
    }

    /// Number of *forward* edges (reverse edges are bookkeeping).
    pub fn edge_count(&self) -> usize {
        self.edges.len() / 2
    }

    /// Drop all nodes and edges but retain every allocation (the edge
    /// vector and the per-node adjacency lists), so the next build is
    /// allocation-free. Equivalent to `reset(0)`.
    pub fn clear(&mut self) {
        self.reset(0);
    }

    /// Reset to `n` fresh nodes and no edges, retaining allocations.
    pub fn reset(&mut self, n: usize) {
        self.edges.clear();
        let live = self.n_nodes.min(self.adj.len());
        for a in &mut self.adj[..live] {
            a.clear();
        }
        if self.adj.len() < n {
            self.adj.resize_with(n, Vec::new);
        }
        self.n_nodes = n;
    }

    /// Add a node, returning its index. Recycles a retained adjacency row
    /// when one is available.
    pub fn add_node(&mut self) -> usize {
        if self.n_nodes == self.adj.len() {
            self.adj.push(Vec::new());
        }
        self.n_nodes += 1;
        self.n_nodes - 1
    }

    /// Add a directed edge `u → v` with capacity `cap` (≥ 0) and per-unit
    /// cost `cost`. Returns a reference usable for flow queries.
    pub fn add_edge(&mut self, u: usize, v: usize, cap: i64, cost: i64) -> EdgeRef {
        assert!(u < self.n_nodes && v < self.n_nodes, "node out of range");
        assert!(cap >= 0, "capacity must be non-negative");
        let id = self.edges.len();
        self.edges.push(Edge {
            to: v,
            cap,
            cost,
            flow: 0,
        });
        self.edges.push(Edge {
            to: u,
            cap: 0,
            cost: -cost,
            flow: 0,
        });
        self.adj[u].push(id);
        self.adj[v].push(id + 1);
        EdgeRef(id)
    }

    /// Split a node's throughput: creates an internal edge `node_in →
    /// node_out` with the given capacity, returning `(node_in, node_out)`.
    /// Point incoming edges at `node_in` and outgoing edges away from
    /// `node_out` and the node processes at most `cap` units — Eq. 5's
    /// per-node capacity |t_j^k|.
    pub fn add_split_node(&mut self, cap: i64) -> (usize, usize, EdgeRef) {
        let inn = self.add_node();
        let out = self.add_node();
        let e = self.add_edge(inn, out, cap, 0);
        (inn, out, e)
    }

    /// Current flow on a forward edge.
    pub fn flow(&self, e: EdgeRef) -> i64 {
        self.edges[e.0].flow
    }

    /// Residual capacity of a forward edge.
    pub fn residual(&self, e: EdgeRef) -> i64 {
        self.edges[e.0].cap - self.edges[e.0].flow
    }

    /// Capacity of a forward edge.
    pub fn capacity(&self, e: EdgeRef) -> i64 {
        self.edges[e.0].cap
    }

    /// Zero out all flow (reuse the same topology for another solve).
    pub fn reset_flow(&mut self) {
        for e in &mut self.edges {
            e.flow = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edges_come_in_forward_reverse_pairs() {
        let mut g = FlowGraph::new(2);
        let e = g.add_edge(0, 1, 5, 3);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.edges[e.0].to, 1);
        assert_eq!(g.edges[e.0 ^ 1].to, 0);
        assert_eq!(g.edges[e.0 ^ 1].cap, 0);
        assert_eq!(g.edges[e.0 ^ 1].cost, -3);
    }

    #[test]
    fn split_node_creates_internal_capacity_edge() {
        let mut g = FlowGraph::new(0);
        let (inn, out, e) = g.add_split_node(7);
        assert_ne!(inn, out);
        assert_eq!(g.capacity(e), 7);
        assert_eq!(g.node_count(), 2);
    }

    #[test]
    fn add_node_grows_graph() {
        let mut g = FlowGraph::new(1);
        assert_eq!(g.add_node(), 1);
        assert_eq!(g.node_count(), 2);
    }

    #[test]
    #[should_panic(expected = "node out of range")]
    fn edge_to_missing_node_panics() {
        let mut g = FlowGraph::new(1);
        g.add_edge(0, 5, 1, 1);
    }

    #[test]
    #[should_panic(expected = "capacity must be non-negative")]
    fn negative_capacity_panics() {
        let mut g = FlowGraph::new(2);
        g.add_edge(0, 1, -1, 0);
    }

    #[test]
    fn reset_retains_allocations_and_rebuilds() {
        let mut g = FlowGraph::new(3);
        g.add_edge(0, 1, 5, 1);
        g.add_edge(1, 2, 5, 1);
        let edge_cap = g.edges.capacity();
        g.reset(2);
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 0);
        assert!(g.edges.capacity() >= edge_cap, "edge storage retained");
        let e = g.add_edge(0, 1, 3, 7);
        assert_eq!(g.capacity(e), 3);
        assert_eq!(g.edge_count(), 1);
        // growing again after a shrink recycles retained rows
        g.reset(1);
        let n = g.add_node();
        assert_eq!(n, 1);
        assert!(g.adj[n].is_empty(), "recycled row starts empty");
    }

    #[test]
    fn clear_empties_everything() {
        let mut g = FlowGraph::new(4);
        g.add_edge(0, 1, 1, 1);
        g.clear();
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        let a = g.add_node();
        let b = g.add_node();
        let e = g.add_edge(a, b, 2, 0);
        assert_eq!(g.residual(e), 2);
    }

    #[test]
    fn clone_from_reproduces_graph() {
        let mut src = FlowGraph::new(3);
        let e = src.add_edge(0, 2, 9, 4);
        let mut dst = FlowGraph::new(50);
        dst.add_edge(3, 4, 1, 1);
        dst.clone_from(&src);
        assert_eq!(dst.node_count(), 3);
        assert_eq!(dst.edge_count(), 1);
        assert_eq!(dst.capacity(e), 9);
    }

    #[test]
    fn reset_flow_clears() {
        let mut g = FlowGraph::new(2);
        let e = g.add_edge(0, 1, 5, 0);
        g.edges[e.0].flow = 3;
        g.edges[e.0 ^ 1].flow = -3;
        g.reset_flow();
        assert_eq!(g.flow(e), 0);
        assert_eq!(g.residual(e), 5);
    }
}

//! Network-flow machinery for DSS-LC (§5.2).
//!
//! The paper formulates LC request dispatch as a Multi-Commodity Network
//! Flow problem — one graph G_k per request type k, unit-demand requests as
//! commodities, transmission delays as edge costs, link/node capacities as
//! constraints (Eq. 3–6) — and hands it to Google OR-tools. This crate is
//! the from-scratch replacement: an exact **min-cost max-flow** solver
//! (successive shortest augmenting paths with Johnson potentials, Bellman–
//! Ford bootstrap for negative costs) plus:
//!
//! * node-capacity splitting (Eq. 5's per-node processing capacity becomes
//!   an internal edge);
//! * a flow-decomposition routine that turns the optimal flow back into
//!   per-request routing paths;
//! * a sequential multi-commodity wrapper that routes several request
//!   types over shared link capacities.

pub mod graph;
pub mod mcmf;
pub mod mcnf;

pub use graph::{EdgeRef, FlowGraph};
pub use mcmf::{solve_batch, FlowResult, McmfWorkspace, MinCostMaxFlow};
pub use mcnf::{Commodity, CommodityResult, McnfProblem};

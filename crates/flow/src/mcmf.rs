//! Min-cost max-flow: successive shortest augmenting paths with Johnson
//! potentials.
//!
//! Complexity O(F · E log V) for F units of flow — far more than enough
//! for DSS-LC's graphs (≤ ~2,000 nodes, unit-demand requests), and exact:
//! the flow it returns is a true optimum of Eq. 3 subject to Eq. 4–6.

use crate::graph::FlowGraph;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Outcome of a solve.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlowResult {
    /// Units of flow actually routed.
    pub flow: i64,
    /// Total cost Σ flow·cost over all edges.
    pub cost: i64,
}

const INF: i64 = i64::MAX / 4;

/// Costs at or below this use Dial bucket queues in the Dijkstra phases;
/// larger costs (e.g. µs-scale delays) fall back to the binary heap,
/// where scanning one bucket per distance unit would dominate.
const SMALL_COST_MAX: i64 = 4096;

/// Hard ceiling on bucket-queue size; a tentative distance beyond this
/// aborts the bucket attempt and re-runs the phase on the heap.
const BUCKET_CAP: usize = 1 << 20;

/// Reusable solver scratch: potentials, distances, DFS stacks and
/// the Dijkstra heap. Holding one of these across solves makes every
/// [`McmfWorkspace::solve`] call allocation-free in steady state — the
/// per-dispatch pattern DSS-LC runs (one solve per request type per
/// tick) never touches the heap allocator once the buffers are warm.
///
/// The workspace is pure per-solve scratch: every buffer is re-sized and
/// re-initialized at the top of [`McmfWorkspace::solve`], so its contents
/// never influence results. Checkpoints (DESIGN.md §11) therefore exclude
/// it — a restored run starts with a cold workspace and computes the same
/// answers.
#[derive(Debug, Clone, Default)]
pub struct McmfWorkspace {
    potential: Vec<i64>,
    dist: Vec<i64>,
    heap: BinaryHeap<Reverse<(i64, usize)>>,
    /// Dial bucket queue: `buckets[d]` holds nodes with tentative reduced
    /// distance `d`. Only used when the graph's costs are small enough
    /// for bucket scanning to beat the binary heap.
    buckets: Vec<Vec<u32>>,
    /// Bucket indices dirtied this phase (cleared lazily next phase).
    touched: Vec<u32>,
    /// Current-arc pointers for the blocking-flow DFS (one per node).
    cur: Vec<usize>,
    /// Edge-id stack holding the DFS path under construction.
    path: Vec<usize>,
    /// Nodes on the DFS path (cycle guard for zero-cost admissible cycles).
    on_path: Vec<bool>,
}

impl McmfWorkspace {
    /// Fresh workspace with no retained buffers.
    pub fn new() -> Self {
        McmfWorkspace::default()
    }

    /// Initialize potentials with Bellman–Ford so that negative edge costs
    /// are handled. Called automatically by [`Self::solve`] when needed.
    ///
    /// Nodes unreachable from `source` keep an `INF` potential, which
    /// doubles as a reachability mask read by `dijkstra`. (The previous
    /// implementation clamped them to 0, which fabricates a finite
    /// potential for nodes Bellman–Ford never relaxed; a negative-cost
    /// edge between two such nodes then shows a negative reduced cost.
    /// Unreachable nodes can never join an augmenting path — residual
    /// capacity only ever appears along augmented paths, whose nodes were
    /// already reachable — so masking them out is exact.)
    fn bellman_ford(&mut self, g: &FlowGraph, source: usize) {
        let n = g.node_count();
        self.potential.clear();
        self.potential.resize(n, INF);
        self.potential[source] = 0;
        // standard |V|-1 rounds over residual edges
        for _ in 0..n.saturating_sub(1) {
            let mut changed = false;
            for u in 0..n {
                if self.potential[u] >= INF {
                    continue;
                }
                for &eid in &g.adj[u] {
                    let e = &g.edges[eid];
                    if e.cap - e.flow > 0 && self.potential[u] + e.cost < self.potential[e.to] {
                        self.potential[e.to] = self.potential[u] + e.cost;
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
    }

    /// Dijkstra on reduced costs, stopping as soon as `sink` is settled
    /// (its label is final once popped). Returns the reduced-cost distance
    /// to `sink`, or `None` when it is unreachable. Tentative labels left
    /// in `dist` for unsettled nodes are all ≥ the returned distance,
    /// which is exactly what the clamped potential update relies on.
    fn dijkstra(
        &mut self,
        g: &FlowGraph,
        source: usize,
        sink: usize,
        small_costs: bool,
    ) -> Option<i64> {
        if small_costs {
            if let Some(found) = self.dijkstra_buckets(g, source, sink) {
                return found;
            }
            // bucket range overflowed (reduced costs drifted large);
            // fall through to the heap, which handles any cost scale
        }
        self.dijkstra_heap(g, source, sink)
    }

    /// Binary-heap Dijkstra: the general-purpose implementation, correct
    /// for any non-negative reduced costs.
    fn dijkstra_heap(&mut self, g: &FlowGraph, source: usize, sink: usize) -> Option<i64> {
        let n = g.node_count();
        self.dist.clear();
        self.dist.resize(n, INF);
        self.dist[source] = 0;
        self.heap.clear();
        self.heap.push(Reverse((0, source)));
        while let Some(Reverse((d, u))) = self.heap.pop() {
            if d > self.dist[u] {
                continue;
            }
            if u == sink {
                return Some(d);
            }
            let pot_u = self.potential[u];
            for &eid in &g.adj[u] {
                let e = &g.edges[eid];
                if e.cap - e.flow <= 0 {
                    continue;
                }
                let pot_v = self.potential[e.to];
                if pot_v >= INF {
                    // unreachable under the initial residual graph: can
                    // never lie on an augmenting path (see bellman_ford)
                    continue;
                }
                let reduced = e.cost + pot_u - pot_v;
                debug_assert!(reduced >= 0, "negative reduced cost after potentials");
                let nd = d + reduced;
                if nd < self.dist[e.to] {
                    self.dist[e.to] = nd;
                    self.heap.push(Reverse((nd, e.to)));
                }
            }
        }
        None
    }

    /// Dial's algorithm: a monotone bucket queue indexed by tentative
    /// reduced distance. For the small integer costs dispatch graphs
    /// carry, scanning buckets is far cheaper than binary-heap churn —
    /// no comparisons, no sift-downs, and settled-order pops are free.
    ///
    /// Returns `None` if a tentative distance outgrows [`BUCKET_CAP`]
    /// (reduced costs can drift upward across phases); the caller then
    /// retries the phase with the heap. Returns `Some(result)` otherwise,
    /// with the same contract as [`Self::dijkstra_heap`].
    fn dijkstra_buckets(
        &mut self,
        g: &FlowGraph,
        source: usize,
        sink: usize,
    ) -> Option<Option<i64>> {
        let n = g.node_count();
        self.dist.clear();
        self.dist.resize(n, INF);
        self.dist[source] = 0;
        for &b in &self.touched {
            self.buckets[b as usize].clear();
        }
        self.touched.clear();
        if self.buckets.is_empty() {
            self.buckets.push(Vec::new());
        }
        self.buckets[0].push(source as u32);
        self.touched.push(0);
        let mut d = 0usize;
        let mut hi = 0usize;
        while d <= hi {
            while let Some(node) = self.buckets[d].pop() {
                let u = node as usize;
                if self.dist[u] != d as i64 {
                    continue; // stale entry superseded by a shorter label
                }
                if u == sink {
                    return Some(Some(d as i64));
                }
                let pot_u = self.potential[u];
                for &eid in &g.adj[u] {
                    let e = &g.edges[eid];
                    if e.cap - e.flow <= 0 {
                        continue;
                    }
                    let pot_v = self.potential[e.to];
                    if pot_v >= INF {
                        continue;
                    }
                    let reduced = e.cost + pot_u - pot_v;
                    debug_assert!(reduced >= 0, "negative reduced cost after potentials");
                    let nd = d as i64 + reduced;
                    if nd < self.dist[e.to] {
                        let ndu = nd as usize;
                        if ndu >= BUCKET_CAP {
                            return None; // too sparse for buckets; use the heap
                        }
                        self.dist[e.to] = nd;
                        if ndu >= self.buckets.len() {
                            self.buckets.resize_with(ndu + 1, Vec::new);
                        }
                        if self.buckets[ndu].is_empty() {
                            self.touched.push(ndu as u32);
                        }
                        self.buckets[ndu].push(e.to as u32);
                        hi = hi.max(ndu);
                    }
                }
            }
            d += 1;
        }
        Some(None)
    }

    /// Saturate the admissible subgraph: push flow along every residual
    /// path whose edges all have zero reduced cost under the current
    /// potentials (i.e. every shortest path found by the preceding
    /// Dijkstra), via a current-arc DFS. Returns (flow, cost) pushed.
    ///
    /// This is the primal-dual refinement of successive shortest paths:
    /// one Dijkstra prices a whole family of equal-length augmenting
    /// paths, instead of one Dijkstra per path.
    fn blocking_flow(
        &mut self,
        g: &mut FlowGraph,
        source: usize,
        sink: usize,
        limit: i64,
    ) -> (i64, i64) {
        let n = g.node_count();
        self.cur.clear();
        self.cur.resize(n, 0);
        self.on_path.clear();
        self.on_path.resize(n, false);
        self.path.clear();
        let mut total = 0i64;
        let mut cost = 0i64;
        'paths: while total < limit {
            // (re)start a DFS descent from wherever the path stack stands;
            // after an augmentation the stack is rewound past the edge
            // that saturated, so established prefixes are reused.
            let mut u = match self.path.last() {
                Some(&eid) => g.edges[eid].to,
                None => source,
            };
            self.on_path[source] = true;
            loop {
                if u == sink {
                    // bottleneck over the stacked edges, then apply
                    let mut push = limit - total;
                    for &eid in &self.path {
                        let e = &g.edges[eid];
                        push = push.min(e.cap - e.flow);
                    }
                    for &eid in &self.path {
                        g.edges[eid].flow += push;
                        g.edges[eid ^ 1].flow -= push;
                        cost += push * g.edges[eid].cost;
                    }
                    total += push;
                    // rewind to just before the first saturated edge
                    let mut cut = self.path.len();
                    for (i, &eid) in self.path.iter().enumerate() {
                        let e = &g.edges[eid];
                        if e.cap - e.flow == 0 {
                            cut = i;
                            break;
                        }
                    }
                    for &eid in &self.path[cut..] {
                        self.on_path[g.edges[eid].to] = false;
                    }
                    self.on_path[sink] = false;
                    self.path.truncate(cut);
                    continue 'paths;
                }
                // advance along the next admissible arc out of `u`
                let mut advanced = false;
                while self.cur[u] < g.adj[u].len() {
                    let eid = g.adj[u][self.cur[u]];
                    let e = &g.edges[eid];
                    let v = e.to;
                    if e.cap - e.flow > 0
                        && !self.on_path[v]
                        && self.potential[v] < INF
                        && e.cost + self.potential[u] - self.potential[v] == 0
                    {
                        self.path.push(eid);
                        self.on_path[v] = true;
                        u = v;
                        advanced = true;
                        break;
                    }
                    self.cur[u] += 1;
                }
                if advanced {
                    continue;
                }
                if u == source {
                    break 'paths; // admissible graph exhausted
                }
                // retreat: drop the edge into `u`, move past it at its tail
                let eid = self.path.pop().expect("non-source dead end has a path");
                self.on_path[u] = false;
                let tail = g.edges[eid ^ 1].to;
                self.cur[tail] += 1;
                u = tail;
            }
        }
        self.on_path[source] = false;
        for &eid in &self.path {
            self.on_path[g.edges[eid].to] = false;
        }
        self.path.clear();
        (total, cost)
    }

    /// Route up to `limit` units of flow from `source` to `sink` at
    /// minimum cost over `g`'s residual network. Use `i64::MAX` for a
    /// true max-flow. Allocation-free once the workspace buffers are warm.
    pub fn solve(
        &mut self,
        g: &mut FlowGraph,
        source: usize,
        sink: usize,
        limit: i64,
    ) -> FlowResult {
        let mut has_negative = false;
        let mut max_abs_cost = 0i64;
        for e in &g.edges {
            if e.cap - e.flow > 0 {
                has_negative |= e.cost < 0;
                max_abs_cost = max_abs_cost.max(e.cost.abs());
            }
        }
        let small_costs = max_abs_cost <= SMALL_COST_MAX && g.node_count() <= u32::MAX as usize;
        if has_negative {
            self.bellman_ford(g, source);
        } else {
            let n = g.node_count();
            self.potential.clear();
            self.potential.resize(n, 0);
        }

        let mut total_flow = 0i64;
        let mut total_cost = 0i64;
        while total_flow < limit {
            let Some(d_sink) = self.dijkstra(g, source, sink, small_costs) else {
                break;
            };
            // Update potentials, clamping at the sink's distance: the
            // early-exit Dijkstra leaves tentative labels ≥ d_sink on
            // unsettled nodes, and min(dist, d_sink) keeps every residual
            // reduced cost non-negative (nodes at or beyond the sink's
            // distance all shift by the same d_sink). Edges on shortest
            // paths end up with reduced cost exactly 0 — the admissible
            // subgraph the blocking-flow pass saturates.
            for v in 0..g.node_count() {
                if self.potential[v] < INF {
                    self.potential[v] += self.dist[v].min(d_sink);
                }
            }
            let (f, c) = self.blocking_flow(g, source, sink, limit - total_flow);
            debug_assert!(f > 0, "reachable sink must admit flow");
            total_flow += f;
            total_cost += c;
        }
        FlowResult {
            flow: total_flow,
            cost: total_cost,
        }
    }
}

/// Solve many *independent* MCMF instances (same source/sink indices,
/// e.g. a batch of §5.2.1 dispatch graphs) concurrently on `pool`.
///
/// Each worker holds one [`McmfWorkspace`] and reuses it across the
/// instances of its statically chunked range; results come back in
/// input order. Instances never share residual state, so the outcome is
/// bit-identical to solving the batch sequentially, at any thread count.
pub fn solve_batch(
    pool: &tango_par::Pool,
    graphs: &mut [FlowGraph],
    source: usize,
    sink: usize,
    limit: i64,
) -> Vec<FlowResult> {
    let mut results = vec![FlowResult::default(); graphs.len()];
    pool.par_zip_chunks_mut(graphs, &mut results, |_, gs, rs| {
        let mut ws = McmfWorkspace::new();
        for (g, r) in gs.iter_mut().zip(rs.iter_mut()) {
            *r = ws.solve(g, source, sink, limit);
        }
    });
    results
}

/// Solver state bound to a graph. Thin convenience wrapper over
/// [`McmfWorkspace`] for one-shot solves; callers on a hot path should
/// hold a `McmfWorkspace` themselves and reuse it across graphs.
pub struct MinCostMaxFlow<'g> {
    g: &'g mut FlowGraph,
    ws: McmfWorkspace,
}

impl<'g> MinCostMaxFlow<'g> {
    /// Bind a solver to `graph`. Existing flow is preserved (so a second
    /// solve continues on the residual network).
    pub fn new(graph: &'g mut FlowGraph) -> Self {
        MinCostMaxFlow {
            g: graph,
            ws: McmfWorkspace::new(),
        }
    }

    /// Route up to `limit` units of flow from `source` to `sink` at
    /// minimum cost. Use `i64::MAX` for a true max-flow.
    pub fn solve(&mut self, source: usize, sink: usize, limit: i64) -> FlowResult {
        self.ws.solve(self.g, source, sink, limit)
    }

    /// Decompose the current flow leaving `source` into unit paths
    /// (sequences of node indices). Destroys nothing: works on a copy of
    /// the per-edge flows. Cycles in the flow (possible with zero-cost
    /// loops) are skipped.
    pub fn decompose_paths(&self, source: usize, sink: usize) -> Vec<Vec<usize>> {
        let mut remaining: Vec<i64> = self.g.edges.iter().map(|e| e.flow).collect();
        let mut paths = Vec::new();
        loop {
            // walk greedily from source along positive-flow edges
            let mut path = vec![source];
            let mut u = source;
            let mut used_edges = Vec::new();
            let mut steps = 0;
            while u != sink {
                steps += 1;
                if steps > self.g.node_count() + 1 {
                    break; // cycle guard
                }
                let next = self.g.adj[u]
                    .iter()
                    .copied()
                    .find(|&eid| eid % 2 == 0 && remaining[eid] > 0);
                match next {
                    Some(eid) => {
                        used_edges.push(eid);
                        u = self.g.edges[eid].to;
                        path.push(u);
                    }
                    None => break,
                }
            }
            if u != sink {
                break;
            }
            for eid in used_edges {
                remaining[eid] -= 1;
            }
            paths.push(path);
        }
        paths
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::FlowGraph;

    #[test]
    fn single_edge_routes_all_capacity() {
        let mut g = FlowGraph::new(2);
        let e = g.add_edge(0, 1, 7, 2);
        let r = MinCostMaxFlow::new(&mut g).solve(0, 1, i64::MAX);
        assert_eq!(r, FlowResult { flow: 7, cost: 14 });
        assert_eq!(g.flow(e), 7);
    }

    /// `solve_batch` matches per-instance sequential solves, per-element
    /// and flow-state, at several thread counts.
    #[test]
    fn solve_batch_matches_sequential_at_any_thread_count() {
        let make = |seed: u64| -> FlowGraph {
            let mut g = FlowGraph::new(6);
            let mut x = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
            let mut rnd = move || {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x
            };
            for u in 0..5usize {
                for _ in 0..3 {
                    let v = 1 + (rnd() % 5) as usize;
                    g.add_edge(u, v, (rnd() % 9) as i64, (rnd() % 40) as i64);
                }
            }
            g
        };
        let want: Vec<FlowResult> = (0..13u64)
            .map(|s| {
                let mut g = make(s);
                MinCostMaxFlow::new(&mut g).solve(0, 1, i64::MAX)
            })
            .collect();
        for t in [1usize, 2, 4, 8] {
            let mut graphs: Vec<FlowGraph> = (0..13u64).map(make).collect();
            let got = solve_batch(&tango_par::Pool::new(t), &mut graphs, 0, 1, i64::MAX);
            assert_eq!(got, want, "threads = {t}");
        }
    }

    #[test]
    fn prefers_cheap_path_then_spills() {
        // 0 -> 1 -> 3 cheap (cap 1), 0 -> 2 -> 3 expensive (cap 10)
        let mut g = FlowGraph::new(4);
        g.add_edge(0, 1, 1, 1);
        g.add_edge(1, 3, 1, 1);
        g.add_edge(0, 2, 10, 5);
        g.add_edge(2, 3, 10, 5);
        let r = MinCostMaxFlow::new(&mut g).solve(0, 3, 3);
        assert_eq!(r.flow, 3);
        // 1 unit at cost 2 + 2 units at cost 10 = 22
        assert_eq!(r.cost, 22);
    }

    #[test]
    fn limit_caps_flow() {
        let mut g = FlowGraph::new(2);
        g.add_edge(0, 1, 100, 1);
        let r = MinCostMaxFlow::new(&mut g).solve(0, 1, 5);
        assert_eq!(r.flow, 5);
        assert_eq!(r.cost, 5);
    }

    #[test]
    fn disconnected_sink_gets_zero() {
        let mut g = FlowGraph::new(3);
        g.add_edge(0, 1, 5, 1);
        let r = MinCostMaxFlow::new(&mut g).solve(0, 2, i64::MAX);
        assert_eq!(r, FlowResult { flow: 0, cost: 0 });
    }

    #[test]
    fn classic_diamond_optimum() {
        // CLRS-style: two paths share a middle edge; check exact optimum.
        let mut g = FlowGraph::new(4);
        g.add_edge(0, 1, 2, 1);
        g.add_edge(0, 2, 2, 4);
        g.add_edge(1, 2, 1, 1);
        g.add_edge(1, 3, 1, 6);
        g.add_edge(2, 3, 3, 1);
        let r = MinCostMaxFlow::new(&mut g).solve(0, 3, i64::MAX);
        assert_eq!(r.flow, 4);
        // optimal: 0-1-2-3 (cost 3), 0-1-3 (cost 7), 2× 0-2-3 (cost 5 each) = 20
        assert_eq!(r.cost, 20);
    }

    /// Regression: a negative-cost edge hanging off a node unreachable
    /// from the source. The old clamp-to-0 fabricated finite potentials
    /// for nodes 2 and 3, making the 2→3 edge's reduced cost −7; the
    /// reachability mask keeps them at INF and out of Dijkstra entirely.
    #[test]
    fn negative_edge_off_unreachable_node_is_masked() {
        let mut g = FlowGraph::new(4);
        g.add_edge(0, 1, 3, 2);
        // appendage: 2 → 3 at cost −7, not reachable from node 0; the
        // −1-cost edge 3 → 1 forces has_negative and the Bellman–Ford path
        g.add_edge(2, 3, 5, -7);
        g.add_edge(3, 1, 5, -1);
        let r = MinCostMaxFlow::new(&mut g).solve(0, 1, i64::MAX);
        assert_eq!(r, FlowResult { flow: 3, cost: 6 });
    }

    /// A workspace reused across separate graphs (different sizes, one
    /// with negative costs) produces the same answers as fresh solvers.
    #[test]
    fn workspace_reuse_across_graphs_matches_fresh_solves() {
        let mut ws = McmfWorkspace::new();

        let mut g1 = FlowGraph::new(4);
        g1.add_edge(0, 1, 2, 1);
        g1.add_edge(0, 2, 2, 4);
        g1.add_edge(1, 2, 1, 1);
        g1.add_edge(1, 3, 1, 6);
        g1.add_edge(2, 3, 3, 1);
        let r1 = ws.solve(&mut g1, 0, 3, i64::MAX);
        assert_eq!(r1, FlowResult { flow: 4, cost: 20 });

        // smaller graph with negative costs — buffers shrink in place
        let mut g2 = FlowGraph::new(3);
        g2.add_edge(0, 1, 2, -3);
        g2.add_edge(1, 2, 2, 1);
        g2.add_edge(0, 2, 2, 0);
        let r2 = ws.solve(&mut g2, 0, 2, i64::MAX);
        assert_eq!(r2, FlowResult { flow: 4, cost: -4 });

        // and a pooled-graph rebuild via reset()
        g2.reset(2);
        g2.add_edge(0, 1, 7, 2);
        let r3 = ws.solve(&mut g2, 0, 1, i64::MAX);
        assert_eq!(r3, FlowResult { flow: 7, cost: 14 });
    }

    #[test]
    fn negative_costs_are_handled_via_bellman_ford() {
        let mut g = FlowGraph::new(3);
        g.add_edge(0, 1, 2, -3);
        g.add_edge(1, 2, 2, 1);
        g.add_edge(0, 2, 2, 0);
        let r = MinCostMaxFlow::new(&mut g).solve(0, 2, i64::MAX);
        assert_eq!(r.flow, 4);
        // 2 units via (−3+1=−2) and 2 via 0 → total −4
        assert_eq!(r.cost, -4);
    }

    #[test]
    fn node_capacity_split_limits_throughput() {
        // source -> [node cap 2] -> sink, with wide outer edges
        let mut g = FlowGraph::new(2); // 0 = source, 1 = sink
        let (inn, out, _e) = g.add_split_node(2);
        g.add_edge(0, inn, 10, 0);
        g.add_edge(out, 1, 10, 0);
        let r = MinCostMaxFlow::new(&mut g).solve(0, 1, i64::MAX);
        assert_eq!(r.flow, 2);
    }

    #[test]
    fn path_decomposition_covers_all_flow() {
        let mut g = FlowGraph::new(4);
        g.add_edge(0, 1, 2, 1);
        g.add_edge(0, 2, 1, 2);
        g.add_edge(1, 3, 2, 1);
        g.add_edge(2, 3, 1, 1);
        let mut solver = MinCostMaxFlow::new(&mut g);
        let r = solver.solve(0, 3, i64::MAX);
        assert_eq!(r.flow, 3);
        let paths = solver.decompose_paths(0, 3);
        assert_eq!(paths.len(), 3);
        for p in &paths {
            assert_eq!(*p.first().unwrap(), 0);
            assert_eq!(*p.last().unwrap(), 3);
        }
    }

    #[test]
    fn repeated_solve_on_residual_continues() {
        let mut g = FlowGraph::new(2);
        g.add_edge(0, 1, 10, 1);
        let r1 = MinCostMaxFlow::new(&mut g).solve(0, 1, 4);
        let r2 = MinCostMaxFlow::new(&mut g).solve(0, 1, i64::MAX);
        assert_eq!(r1.flow, 4);
        assert_eq!(r2.flow, 6);
    }

    #[test]
    fn large_random_graph_flow_conservation() {
        // build a layered random-ish graph deterministically; assert
        // conservation at interior nodes.
        let layers = 5;
        let width = 8;
        let n = 2 + layers * width;
        let mut g = FlowGraph::new(n);
        let node = |l: usize, w: usize| 2 + l * width + w;
        let mut x: u64 = 12345;
        let mut rnd = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for w in 0..width {
            g.add_edge(0, node(0, w), (rnd() % 5 + 1) as i64, (rnd() % 10) as i64);
            g.add_edge(
                node(layers - 1, w),
                1,
                (rnd() % 5 + 1) as i64,
                (rnd() % 10) as i64,
            );
        }
        for l in 0..layers - 1 {
            for w in 0..width {
                for _ in 0..3 {
                    let t = (rnd() % width as u64) as usize;
                    g.add_edge(
                        node(l, w),
                        node(l + 1, t),
                        (rnd() % 4 + 1) as i64,
                        (rnd() % 20) as i64,
                    );
                }
            }
        }
        let r = MinCostMaxFlow::new(&mut g).solve(0, 1, i64::MAX);
        assert!(r.flow > 0);
        // conservation: for each interior node, in-flow == out-flow
        let mut balance = vec![0i64; n];
        for (i, e) in g.edges.iter().enumerate().step_by(2) {
            let from = g.edges[i ^ 1].to;
            balance[from] -= e.flow;
            balance[e.to] += e.flow;
        }
        for (v, &b) in balance.iter().enumerate().skip(2) {
            assert_eq!(b, 0, "node {v} unbalanced");
        }
        assert_eq!(balance[0], -r.flow);
        assert_eq!(balance[1], r.flow);
    }
}

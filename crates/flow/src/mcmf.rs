//! Min-cost max-flow: successive shortest augmenting paths with Johnson
//! potentials.
//!
//! Complexity O(F · E log V) for F units of flow — far more than enough
//! for DSS-LC's graphs (≤ ~2,000 nodes, unit-demand requests), and exact:
//! the flow it returns is a true optimum of Eq. 3 subject to Eq. 4–6.

use crate::graph::FlowGraph;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Outcome of a solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowResult {
    /// Units of flow actually routed.
    pub flow: i64,
    /// Total cost Σ flow·cost over all edges.
    pub cost: i64,
}

const INF: i64 = i64::MAX / 4;

/// Reusable solver scratch: potentials, distances, predecessor edges and
/// the Dijkstra heap. Holding one of these across solves makes every
/// [`McmfWorkspace::solve`] call allocation-free in steady state — the
/// per-dispatch pattern DSS-LC runs (one solve per request type per
/// tick) never touches the heap allocator once the buffers are warm.
#[derive(Debug, Clone, Default)]
pub struct McmfWorkspace {
    potential: Vec<i64>,
    dist: Vec<i64>,
    prev_edge: Vec<usize>,
    heap: BinaryHeap<Reverse<(i64, usize)>>,
}

impl McmfWorkspace {
    /// Fresh workspace with no retained buffers.
    pub fn new() -> Self {
        McmfWorkspace::default()
    }

    /// Initialize potentials with Bellman–Ford so that negative edge costs
    /// are handled. Called automatically by [`Self::solve`] when needed.
    ///
    /// Nodes unreachable from `source` keep an `INF` potential, which
    /// doubles as a reachability mask read by `dijkstra`. (The previous
    /// implementation clamped them to 0, which fabricates a finite
    /// potential for nodes Bellman–Ford never relaxed; a negative-cost
    /// edge between two such nodes then shows a negative reduced cost.
    /// Unreachable nodes can never join an augmenting path — residual
    /// capacity only ever appears along augmented paths, whose nodes were
    /// already reachable — so masking them out is exact.)
    fn bellman_ford(&mut self, g: &FlowGraph, source: usize) {
        let n = g.node_count();
        self.potential.clear();
        self.potential.resize(n, INF);
        self.potential[source] = 0;
        // standard |V|-1 rounds over residual edges
        for _ in 0..n.saturating_sub(1) {
            let mut changed = false;
            for u in 0..n {
                if self.potential[u] >= INF {
                    continue;
                }
                for &eid in &g.adj[u] {
                    let e = &g.edges[eid];
                    if e.cap - e.flow > 0 && self.potential[u] + e.cost < self.potential[e.to] {
                        self.potential[e.to] = self.potential[u] + e.cost;
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
    }

    /// Dijkstra on reduced costs; returns whether `sink` is reachable.
    fn dijkstra(&mut self, g: &FlowGraph, source: usize, sink: usize) -> bool {
        let n = g.node_count();
        self.dist.clear();
        self.dist.resize(n, INF);
        self.prev_edge.clear();
        self.prev_edge.resize(n, usize::MAX);
        self.dist[source] = 0;
        self.heap.clear();
        self.heap.push(Reverse((0, source)));
        while let Some(Reverse((d, u))) = self.heap.pop() {
            if d > self.dist[u] {
                continue;
            }
            let pot_u = self.potential[u];
            for &eid in &g.adj[u] {
                let e = &g.edges[eid];
                if e.cap - e.flow <= 0 {
                    continue;
                }
                let pot_v = self.potential[e.to];
                if pot_v >= INF {
                    // unreachable under the initial residual graph: can
                    // never lie on an augmenting path (see bellman_ford)
                    continue;
                }
                let reduced = e.cost + pot_u - pot_v;
                debug_assert!(reduced >= 0, "negative reduced cost after potentials");
                let nd = d + reduced;
                if nd < self.dist[e.to] {
                    self.dist[e.to] = nd;
                    self.prev_edge[e.to] = eid;
                    self.heap.push(Reverse((nd, e.to)));
                }
            }
        }
        self.dist[sink] < INF
    }

    /// Route up to `limit` units of flow from `source` to `sink` at
    /// minimum cost over `g`'s residual network. Use `i64::MAX` for a
    /// true max-flow. Allocation-free once the workspace buffers are warm.
    pub fn solve(
        &mut self,
        g: &mut FlowGraph,
        source: usize,
        sink: usize,
        limit: i64,
    ) -> FlowResult {
        let has_negative = g.edges.iter().any(|e| e.cap - e.flow > 0 && e.cost < 0);
        if has_negative {
            self.bellman_ford(g, source);
        } else {
            let n = g.node_count();
            self.potential.clear();
            self.potential.resize(n, 0);
        }

        let mut total_flow = 0i64;
        let mut total_cost = 0i64;
        while total_flow < limit && self.dijkstra(g, source, sink) {
            // update potentials
            for v in 0..g.node_count() {
                if self.dist[v] < INF {
                    self.potential[v] += self.dist[v];
                }
            }
            // bottleneck along the augmenting path
            let mut push = limit - total_flow;
            let mut v = sink;
            while v != source {
                let eid = self.prev_edge[v];
                let e = &g.edges[eid];
                push = push.min(e.cap - e.flow);
                v = g.edges[eid ^ 1].to;
            }
            // apply
            let mut v = sink;
            while v != source {
                let eid = self.prev_edge[v];
                g.edges[eid].flow += push;
                g.edges[eid ^ 1].flow -= push;
                total_cost += push * g.edges[eid].cost;
                v = g.edges[eid ^ 1].to;
            }
            total_flow += push;
        }
        FlowResult {
            flow: total_flow,
            cost: total_cost,
        }
    }
}

/// Solver state bound to a graph. Thin convenience wrapper over
/// [`McmfWorkspace`] for one-shot solves; callers on a hot path should
/// hold a `McmfWorkspace` themselves and reuse it across graphs.
pub struct MinCostMaxFlow<'g> {
    g: &'g mut FlowGraph,
    ws: McmfWorkspace,
}

impl<'g> MinCostMaxFlow<'g> {
    /// Bind a solver to `graph`. Existing flow is preserved (so a second
    /// solve continues on the residual network).
    pub fn new(graph: &'g mut FlowGraph) -> Self {
        MinCostMaxFlow {
            g: graph,
            ws: McmfWorkspace::new(),
        }
    }

    /// Route up to `limit` units of flow from `source` to `sink` at
    /// minimum cost. Use `i64::MAX` for a true max-flow.
    pub fn solve(&mut self, source: usize, sink: usize, limit: i64) -> FlowResult {
        self.ws.solve(self.g, source, sink, limit)
    }

    /// Decompose the current flow leaving `source` into unit paths
    /// (sequences of node indices). Destroys nothing: works on a copy of
    /// the per-edge flows. Cycles in the flow (possible with zero-cost
    /// loops) are skipped.
    pub fn decompose_paths(&self, source: usize, sink: usize) -> Vec<Vec<usize>> {
        let mut remaining: Vec<i64> = self.g.edges.iter().map(|e| e.flow).collect();
        let mut paths = Vec::new();
        loop {
            // walk greedily from source along positive-flow edges
            let mut path = vec![source];
            let mut u = source;
            let mut used_edges = Vec::new();
            let mut steps = 0;
            while u != sink {
                steps += 1;
                if steps > self.g.node_count() + 1 {
                    break; // cycle guard
                }
                let next = self.g.adj[u]
                    .iter()
                    .copied()
                    .find(|&eid| eid % 2 == 0 && remaining[eid] > 0);
                match next {
                    Some(eid) => {
                        used_edges.push(eid);
                        u = self.g.edges[eid].to;
                        path.push(u);
                    }
                    None => break,
                }
            }
            if u != sink {
                break;
            }
            for eid in used_edges {
                remaining[eid] -= 1;
            }
            paths.push(path);
        }
        paths
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::FlowGraph;

    #[test]
    fn single_edge_routes_all_capacity() {
        let mut g = FlowGraph::new(2);
        let e = g.add_edge(0, 1, 7, 2);
        let r = MinCostMaxFlow::new(&mut g).solve(0, 1, i64::MAX);
        assert_eq!(r, FlowResult { flow: 7, cost: 14 });
        assert_eq!(g.flow(e), 7);
    }

    #[test]
    fn prefers_cheap_path_then_spills() {
        // 0 -> 1 -> 3 cheap (cap 1), 0 -> 2 -> 3 expensive (cap 10)
        let mut g = FlowGraph::new(4);
        g.add_edge(0, 1, 1, 1);
        g.add_edge(1, 3, 1, 1);
        g.add_edge(0, 2, 10, 5);
        g.add_edge(2, 3, 10, 5);
        let r = MinCostMaxFlow::new(&mut g).solve(0, 3, 3);
        assert_eq!(r.flow, 3);
        // 1 unit at cost 2 + 2 units at cost 10 = 22
        assert_eq!(r.cost, 22);
    }

    #[test]
    fn limit_caps_flow() {
        let mut g = FlowGraph::new(2);
        g.add_edge(0, 1, 100, 1);
        let r = MinCostMaxFlow::new(&mut g).solve(0, 1, 5);
        assert_eq!(r.flow, 5);
        assert_eq!(r.cost, 5);
    }

    #[test]
    fn disconnected_sink_gets_zero() {
        let mut g = FlowGraph::new(3);
        g.add_edge(0, 1, 5, 1);
        let r = MinCostMaxFlow::new(&mut g).solve(0, 2, i64::MAX);
        assert_eq!(r, FlowResult { flow: 0, cost: 0 });
    }

    #[test]
    fn classic_diamond_optimum() {
        // CLRS-style: two paths share a middle edge; check exact optimum.
        let mut g = FlowGraph::new(4);
        g.add_edge(0, 1, 2, 1);
        g.add_edge(0, 2, 2, 4);
        g.add_edge(1, 2, 1, 1);
        g.add_edge(1, 3, 1, 6);
        g.add_edge(2, 3, 3, 1);
        let r = MinCostMaxFlow::new(&mut g).solve(0, 3, i64::MAX);
        assert_eq!(r.flow, 4);
        // optimal: 0-1-2-3 (cost 3), 0-1-3 (cost 7), 2× 0-2-3 (cost 5 each) = 20
        assert_eq!(r.cost, 20);
    }

    /// Regression: a negative-cost edge hanging off a node unreachable
    /// from the source. The old clamp-to-0 fabricated finite potentials
    /// for nodes 2 and 3, making the 2→3 edge's reduced cost −7; the
    /// reachability mask keeps them at INF and out of Dijkstra entirely.
    #[test]
    fn negative_edge_off_unreachable_node_is_masked() {
        let mut g = FlowGraph::new(4);
        g.add_edge(0, 1, 3, 2);
        // appendage: 2 → 3 at cost −7, not reachable from node 0; the
        // −1-cost edge 3 → 1 forces has_negative and the Bellman–Ford path
        g.add_edge(2, 3, 5, -7);
        g.add_edge(3, 1, 5, -1);
        let r = MinCostMaxFlow::new(&mut g).solve(0, 1, i64::MAX);
        assert_eq!(r, FlowResult { flow: 3, cost: 6 });
    }

    /// A workspace reused across separate graphs (different sizes, one
    /// with negative costs) produces the same answers as fresh solvers.
    #[test]
    fn workspace_reuse_across_graphs_matches_fresh_solves() {
        let mut ws = McmfWorkspace::new();

        let mut g1 = FlowGraph::new(4);
        g1.add_edge(0, 1, 2, 1);
        g1.add_edge(0, 2, 2, 4);
        g1.add_edge(1, 2, 1, 1);
        g1.add_edge(1, 3, 1, 6);
        g1.add_edge(2, 3, 3, 1);
        let r1 = ws.solve(&mut g1, 0, 3, i64::MAX);
        assert_eq!(r1, FlowResult { flow: 4, cost: 20 });

        // smaller graph with negative costs — buffers shrink in place
        let mut g2 = FlowGraph::new(3);
        g2.add_edge(0, 1, 2, -3);
        g2.add_edge(1, 2, 2, 1);
        g2.add_edge(0, 2, 2, 0);
        let r2 = ws.solve(&mut g2, 0, 2, i64::MAX);
        assert_eq!(r2, FlowResult { flow: 4, cost: -4 });

        // and a pooled-graph rebuild via reset()
        g2.reset(2);
        g2.add_edge(0, 1, 7, 2);
        let r3 = ws.solve(&mut g2, 0, 1, i64::MAX);
        assert_eq!(r3, FlowResult { flow: 7, cost: 14 });
    }

    #[test]
    fn negative_costs_are_handled_via_bellman_ford() {
        let mut g = FlowGraph::new(3);
        g.add_edge(0, 1, 2, -3);
        g.add_edge(1, 2, 2, 1);
        g.add_edge(0, 2, 2, 0);
        let r = MinCostMaxFlow::new(&mut g).solve(0, 2, i64::MAX);
        assert_eq!(r.flow, 4);
        // 2 units via (−3+1=−2) and 2 via 0 → total −4
        assert_eq!(r.cost, -4);
    }

    #[test]
    fn node_capacity_split_limits_throughput() {
        // source -> [node cap 2] -> sink, with wide outer edges
        let mut g = FlowGraph::new(2); // 0 = source, 1 = sink
        let (inn, out, _e) = g.add_split_node(2);
        g.add_edge(0, inn, 10, 0);
        g.add_edge(out, 1, 10, 0);
        let r = MinCostMaxFlow::new(&mut g).solve(0, 1, i64::MAX);
        assert_eq!(r.flow, 2);
    }

    #[test]
    fn path_decomposition_covers_all_flow() {
        let mut g = FlowGraph::new(4);
        g.add_edge(0, 1, 2, 1);
        g.add_edge(0, 2, 1, 2);
        g.add_edge(1, 3, 2, 1);
        g.add_edge(2, 3, 1, 1);
        let mut solver = MinCostMaxFlow::new(&mut g);
        let r = solver.solve(0, 3, i64::MAX);
        assert_eq!(r.flow, 3);
        let paths = solver.decompose_paths(0, 3);
        assert_eq!(paths.len(), 3);
        for p in &paths {
            assert_eq!(*p.first().unwrap(), 0);
            assert_eq!(*p.last().unwrap(), 3);
        }
    }

    #[test]
    fn repeated_solve_on_residual_continues() {
        let mut g = FlowGraph::new(2);
        g.add_edge(0, 1, 10, 1);
        let r1 = MinCostMaxFlow::new(&mut g).solve(0, 1, 4);
        let r2 = MinCostMaxFlow::new(&mut g).solve(0, 1, i64::MAX);
        assert_eq!(r1.flow, 4);
        assert_eq!(r2.flow, 6);
    }

    #[test]
    fn large_random_graph_flow_conservation() {
        // build a layered random-ish graph deterministically; assert
        // conservation at interior nodes.
        let layers = 5;
        let width = 8;
        let n = 2 + layers * width;
        let mut g = FlowGraph::new(n);
        let node = |l: usize, w: usize| 2 + l * width + w;
        let mut x: u64 = 12345;
        let mut rnd = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for w in 0..width {
            g.add_edge(0, node(0, w), (rnd() % 5 + 1) as i64, (rnd() % 10) as i64);
            g.add_edge(
                node(layers - 1, w),
                1,
                (rnd() % 5 + 1) as i64,
                (rnd() % 10) as i64,
            );
        }
        for l in 0..layers - 1 {
            for w in 0..width {
                for _ in 0..3 {
                    let t = (rnd() % width as u64) as usize;
                    g.add_edge(
                        node(l, w),
                        node(l + 1, t),
                        (rnd() % 4 + 1) as i64,
                        (rnd() % 20) as i64,
                    );
                }
            }
        }
        let r = MinCostMaxFlow::new(&mut g).solve(0, 1, i64::MAX);
        assert!(r.flow > 0);
        // conservation: for each interior node, in-flow == out-flow
        let mut balance = vec![0i64; n];
        for (i, e) in g.edges.iter().enumerate().step_by(2) {
            let from = g.edges[i ^ 1].to;
            balance[from] -= e.flow;
            balance[e.to] += e.flow;
        }
        for (v, &b) in balance.iter().enumerate().skip(2) {
            assert_eq!(b, 0, "node {v} unbalanced");
        }
        assert_eq!(balance[0], -r.flow);
        assert_eq!(balance[1], r.flow);
    }
}

//! Sequential multi-commodity routing over shared capacities.
//!
//! DSS-LC builds one graph per request type, but the types share physical
//! links. [`McnfProblem`] routes commodities one at a time on the shared
//! residual network — the classic sequential (greedy) MCNF heuristic, which
//! is exact per commodity and respects the shared Eq. 4 capacity globally.
//! Commodities are processed in descending demand order so large types are
//! not starved by fragmentation.

use crate::graph::FlowGraph;
use crate::mcmf::MinCostMaxFlow;

/// One commodity: `demand` units to route from `source` to `sink`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Commodity {
    /// Source node index.
    pub source: usize,
    /// Sink node index.
    pub sink: usize,
    /// Units requested.
    pub demand: i64,
}

/// Result for one commodity.
#[derive(Debug, Clone, PartialEq)]
pub struct CommodityResult {
    /// The commodity's position in the *input* order.
    pub index: usize,
    /// Units actually routed (≤ demand).
    pub routed: i64,
    /// Cost incurred by this commodity's flow.
    pub cost: i64,
    /// Unit routing paths (node index sequences source → sink).
    pub paths: Vec<Vec<usize>>,
}

/// A multi-commodity flow problem over one shared graph.
pub struct McnfProblem {
    graph: FlowGraph,
    commodities: Vec<Commodity>,
}

impl McnfProblem {
    /// Wrap a graph (with all shared-capacity edges already added).
    pub fn new(graph: FlowGraph) -> Self {
        McnfProblem {
            graph,
            commodities: Vec::new(),
        }
    }

    /// Queue a commodity; returns its index for matching results.
    pub fn add_commodity(&mut self, c: Commodity) -> usize {
        self.commodities.push(c);
        self.commodities.len() - 1
    }

    /// Route all commodities sequentially (largest demand first) and
    /// return per-commodity results in input order.
    pub fn solve(mut self) -> Vec<CommodityResult> {
        let mut order: Vec<usize> = (0..self.commodities.len()).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(self.commodities[i].demand));

        let mut results: Vec<CommodityResult> = (0..self.commodities.len())
            .map(|i| CommodityResult {
                index: i,
                routed: 0,
                cost: 0,
                paths: Vec::new(),
            })
            .collect();

        for &i in &order {
            let c = self.commodities[i];
            if c.demand <= 0 {
                continue;
            }
            // remember pre-solve flow so decomposition only sees this
            // commodity's contribution
            let before: Vec<i64> = self.graph.edges.iter().map(|e| e.flow).collect();
            let mut solver = MinCostMaxFlow::new(&mut self.graph);
            let r = solver.solve(c.source, c.sink, c.demand);
            // decompose only the delta flow
            let mut delta_graph = self.graph.clone();
            for (eid, e) in delta_graph.edges.iter_mut().enumerate() {
                e.flow -= before[eid];
            }
            let delta_solver = MinCostMaxFlow::new(&mut delta_graph);
            let paths = delta_solver.decompose_paths(c.source, c.sink);
            results[i] = CommodityResult {
                index: i,
                routed: r.flow,
                cost: r.cost,
                paths,
            };
        }
        results
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two commodities share a single cap-3 link.
    #[test]
    fn shared_link_capacity_is_respected() {
        // s1=0, s2=1, shared a=2 -> b=3 (cap 3), t1=4, t2=5
        let mut g = FlowGraph::new(6);
        g.add_edge(0, 2, 10, 0);
        g.add_edge(1, 2, 10, 0);
        let shared = g.add_edge(2, 3, 3, 1);
        g.add_edge(3, 4, 10, 0);
        g.add_edge(3, 5, 10, 0);
        let mut p = McnfProblem::new(g);
        p.add_commodity(Commodity {
            source: 0,
            sink: 4,
            demand: 2,
        });
        p.add_commodity(Commodity {
            source: 1,
            sink: 5,
            demand: 2,
        });
        let rs = p.solve();
        let total: i64 = rs.iter().map(|r| r.routed).sum();
        assert_eq!(total, 3, "shared link caps combined flow at 3");
        let _ = shared;
    }

    #[test]
    fn larger_demand_goes_first() {
        // one commodity can be fully satisfied only if it routes first
        let mut g = FlowGraph::new(4);
        g.add_edge(0, 2, 5, 0); // bottleneck for both
        g.add_edge(1, 2, 5, 0);
        g.add_edge(2, 3, 5, 0);
        let mut p = McnfProblem::new(g);
        let small = p.add_commodity(Commodity {
            source: 1,
            sink: 3,
            demand: 1,
        });
        let big = p.add_commodity(Commodity {
            source: 0,
            sink: 3,
            demand: 5,
        });
        let rs = p.solve();
        assert_eq!(rs[big].routed, 5);
        assert_eq!(rs[small].routed, 0);
    }

    #[test]
    fn results_keep_input_order_and_paths_match_routed() {
        let mut g = FlowGraph::new(3);
        g.add_edge(0, 1, 4, 2);
        g.add_edge(1, 2, 4, 2);
        let mut p = McnfProblem::new(g);
        p.add_commodity(Commodity {
            source: 0,
            sink: 2,
            demand: 3,
        });
        let rs = p.solve();
        assert_eq!(rs.len(), 1);
        assert_eq!(rs[0].index, 0);
        assert_eq!(rs[0].routed, 3);
        assert_eq!(rs[0].cost, 12);
        assert_eq!(rs[0].paths.len(), 3);
        for path in &rs[0].paths {
            assert_eq!(path, &vec![0, 1, 2]);
        }
    }

    #[test]
    fn zero_demand_commodity_is_noop() {
        let mut g = FlowGraph::new(2);
        g.add_edge(0, 1, 1, 1);
        let mut p = McnfProblem::new(g);
        p.add_commodity(Commodity {
            source: 0,
            sink: 1,
            demand: 0,
        });
        let rs = p.solve();
        assert_eq!(rs[0].routed, 0);
        assert!(rs[0].paths.is_empty());
    }

    #[test]
    fn unroutable_commodity_reports_zero() {
        let g = FlowGraph::new(3); // no edges at all
        let mut p = McnfProblem::new(g);
        p.add_commodity(Commodity {
            source: 0,
            sink: 2,
            demand: 4,
        });
        let rs = p.solve();
        assert_eq!(rs[0].routed, 0);
    }
}

//! GNN encoder forward/backward cost — DCG-BE makes one encode per BE
//! scheduling decision, so this bounds the central dispatcher's decision
//! rate (Fig. 11(d)'s structures compared head-to-head).

use std::hint::black_box;
use tango_bench::microbench;
use tango_gnn::{Encoder, EncoderKind, FeatureGraph, GnnEncoder};
use tango_nn::Matrix;

fn make_graph(n: usize, f: usize) -> FeatureGraph {
    let data: Vec<f32> = (0..n * f)
        .map(|i| ((i * 37) % 101) as f32 / 101.0)
        .collect();
    let mut g = FeatureGraph::new(Matrix::from_vec(n, f, data).unwrap());
    // star clusters of 10 + chain of heads (the dispatcher's topology)
    for head in (0..n).step_by(10) {
        for i in head + 1..(head + 10).min(n) {
            g.add_edge(head, i);
        }
        if head + 10 < n {
            g.add_edge(head, head + 10);
        }
    }
    g
}

fn main() {
    for &n in &[100usize, 1000] {
        let graph = make_graph(n, 8);
        for (name, kind) in [
            ("sage", EncoderKind::Sage { p: 3 }),
            ("gcn", EncoderKind::Gcn),
            ("gat", EncoderKind::Gat),
            ("native", EncoderKind::Native),
        ] {
            let mut enc = GnnEncoder::paper_shape(kind, 8, 32, 16, 5);
            let s = microbench::run(&format!("gnn_encode/{name}/{n}"), 200, || {
                black_box(enc.forward(black_box(&graph)))
            });
            microbench::report(&s);
        }
    }

    let graph = make_graph(200, 8);
    let mut enc = GnnEncoder::paper_shape(EncoderKind::Sage { p: 3 }, 8, 32, 16, 5);
    let s = microbench::run("gnn_sage_forward_backward_step", 200, || {
        let h = enc.forward(&graph);
        enc.backward(&h);
        enc.step(1e-3);
    });
    microbench::report(&s);
}

//! DSS-LC decision-time bench (§7.2 text: "1.99 ms for a node size of 500
//! and 3.98 ms for a node size of 1000").

use std::hint::black_box;
use tango_bench::microbench;
use tango_sched::{CandidateNode, DssLc, TypeBatch};
use tango_types::{ClusterId, NodeId, RequestId, Resources, ServiceId, SimTime};

fn make_batch(n_nodes: usize, n_requests: u64) -> TypeBatch {
    let nodes: Vec<CandidateNode> = (0..n_nodes)
        .map(|i| CandidateNode {
            node: NodeId(i as u32),
            cluster: ClusterId((i / 10) as u32),
            total: Resources::cpu_mem(8_000, 16_384),
            available_lc: Resources::cpu_mem(2_000 + (i as u64 % 7) * 500, 4_096),
            available_be: Resources::cpu_mem(2_000, 4_096),
            min_request: Resources::cpu_mem(500, 256),
            delay: SimTime::from_micros(300 + (i as u64 % 50) * 997),
            link_capacity: 64,
            slack: 1.0,
            alive: true,
        })
        .collect();
    TypeBatch {
        service: ServiceId(0),
        requests: (0..n_requests).map(RequestId).collect(),
        nodes: nodes.into(),
    }
}

fn main() {
    for &n in &[100usize, 500, 1000] {
        // paper-like regime: pending ≈ 2× instantaneous capacity, so both
        // the immediate and the λ-augmented overflow graphs are solved
        let batch = make_batch(n, n as u64 * 2);
        let mut sched = DssLc::new(7);
        let s = microbench::run(&format!("dss_lc_decision/{n}"), 300, || {
            black_box(sched.plan(black_box(&batch)))
        });
        microbench::report(&s);
    }
}

//! Whole-system throughput: how much wall time one simulated second of
//! the dual-space system costs, at two scales. This is the number that
//! determines how far past the paper's 104-cluster scale the harness can
//! push.

use std::hint::black_box;
use tango::{BePolicy, EdgeCloudSystem, TangoConfig};
use tango_bench::microbench;
use tango_types::SimTime;

fn main() {
    for &clusters in &[4usize, 16] {
        let s = microbench::run(
            &format!("system_simulated_second/{clusters}"),
            1_000,
            || {
                let mut cfg = TangoConfig::dual_space(clusters);
                cfg.be_policy = BePolicy::LoadGreedy; // isolate system cost
                let report = EdgeCloudSystem::new(cfg).run(SimTime::from_secs(1), "bench");
                black_box(report.lc_arrived)
            },
        );
        microbench::report(&s);
    }
}

//! Whole-system throughput: how much wall time one simulated second of
//! the dual-space system costs, at two scales. This is the number that
//! determines how far past the paper's 104-cluster scale the harness can
//! push.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tango::{BePolicy, EdgeCloudSystem, TangoConfig};
use tango_types::SimTime;

fn bench_system(c: &mut Criterion) {
    let mut group = c.benchmark_group("system_simulated_second");
    group.sample_size(10);
    for &clusters in &[4usize, 16] {
        group.bench_with_input(
            BenchmarkId::from_parameter(clusters),
            &clusters,
            |b, &clusters| {
                b.iter(|| {
                    let mut cfg = TangoConfig::dual_space(clusters);
                    cfg.be_policy = BePolicy::LoadGreedy; // isolate system cost
                    let report =
                        EdgeCloudSystem::new(cfg).run(SimTime::from_secs(1), "bench");
                    black_box(report.lc_arrived)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_system);
criterion_main!(benches);

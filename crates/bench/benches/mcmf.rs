//! Min-cost max-flow solver benchmark: the inner engine of DSS-LC.

use std::hint::black_box;
use tango_bench::microbench;
use tango_flow::{FlowGraph, MinCostMaxFlow};

/// Deterministic layered graph: `layers × width` interior nodes.
fn layered(width: usize, layers: usize) -> FlowGraph {
    let n = 2 + layers * width;
    let mut g = FlowGraph::new(n);
    let node = |l: usize, w: usize| 2 + l * width + w;
    let mut x: u64 = 0x9E3779B97F4A7C15;
    let mut rnd = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    for w in 0..width {
        g.add_edge(0, node(0, w), (rnd() % 8 + 1) as i64, (rnd() % 50) as i64);
        g.add_edge(
            node(layers - 1, w),
            1,
            (rnd() % 8 + 1) as i64,
            (rnd() % 50) as i64,
        );
    }
    for l in 0..layers - 1 {
        for w in 0..width {
            for _ in 0..3 {
                let t = (rnd() % width as u64) as usize;
                g.add_edge(
                    node(l, w),
                    node(l + 1, t),
                    (rnd() % 6 + 1) as i64,
                    (rnd() % 100) as i64,
                );
            }
        }
    }
    g
}

fn main() {
    for &(width, layers) in &[(8usize, 4usize), (32, 6), (128, 8)] {
        let template = layered(width, layers);
        let label = format!("mcmf_solve/{}x{}", width, layers);
        let mut g = template.clone();
        let s = microbench::run(&label, 300, || {
            g.clone_from(&template);
            let r = MinCostMaxFlow::new(&mut g).solve(0, 1, i64::MAX);
            black_box(r)
        });
        microbench::report(&s);
    }
}

//! HRM hot-path costs: regulation admission (with rebalance), reclaim,
//! and the QoS re-assurance tick — these run on every request and every
//! 100 ms window respectively.

use std::collections::HashMap;
use std::hint::black_box;
use tango_bench::microbench;
use tango_hrm::{HrmAllocator, ReassuranceConfig, Reassurer};
use tango_kube::Node;
use tango_metrics::QosDetector;
use tango_types::{
    ClusterId, NodeId, Request, RequestId, Resources, ServiceClass, ServiceId, ServiceSpec, SimTime,
};

fn specs() -> Vec<ServiceSpec> {
    (0..10u16)
        .map(|i| ServiceSpec {
            id: ServiceId(i),
            name: format!("svc{i}"),
            class: if i < 5 {
                ServiceClass::Lc
            } else {
                ServiceClass::Be
            },
            min_request: Resources::cpu_mem(300 + (i as u64) * 50, 128 + (i as u64) * 64),
            work_milli_ms: 30_000 + (i as u64) * 10_000,
            qos_target: SimTime::from_millis(300),
            payload_kib: 64,
        })
        .collect()
}

fn node_with_services() -> (Node, HrmAllocator) {
    let mut node = Node::new(
        NodeId(1),
        ClusterId(0),
        false,
        Resources::new(16_000, 32_768, 2_000, 200_000),
    );
    let mut floors = HashMap::new();
    for s in specs() {
        node.deploy_service(&s, s.min_request, SimTime::ZERO)
            .unwrap();
        floors.insert(s.id, s.min_request);
    }
    (node, HrmAllocator::new(floors))
}

fn main() {
    let (mut node, mut alloc) = node_with_services();
    let spec_list = specs();
    let mut t = 0u64;
    let mut rid = 0u64;
    let s = microbench::run("hrm_admit_complete_reclaim_cycle", 200, || {
        let sp = &spec_list[(rid % 10) as usize];
        let req = Request::new(
            RequestId(rid),
            sp.id,
            sp.class,
            ClusterId(0),
            SimTime::from_millis(t),
            sp.min_request,
        );
        let now = SimTime::from_millis(t);
        let _ = black_box(alloc.try_admit(&mut node, &req, sp.work_milli_ms, now));
        t += 500; // everything drains between iterations
        node.advance(SimTime::from_millis(t));
        node.take_completions();
        alloc.rebalance(&mut node, SimTime::from_millis(t));
        rid += 1;
    });
    microbench::report(&s);

    let mut detector = QosDetector::paper_default();
    let now = SimTime::from_millis(1_000);
    for node in 0..20u32 {
        for svc in 0..5u16 {
            for k in 0..10u64 {
                detector.record(
                    NodeId(node),
                    ServiceId(svc),
                    now.saturating_since(SimTime::from_millis(k)),
                    SimTime::from_millis(250 + k * 10),
                );
            }
        }
    }
    let mut reassurer = Reassurer::new(ReassuranceConfig::default());
    let targets = |_: ServiceId| SimTime::from_millis(300);
    let s = microbench::run("reassurance_tick_100_pairs", 200, || {
        black_box(reassurer.tick(&mut detector, &targets, now))
    });
    microbench::report(&s);
}

//! D-VPA scaling-operation microbenchmark (§7.1 text).
//!
//! The paper measures 23 ms per D-VPA scaling operation versus ~100× that
//! for the native VPA's delete-and-rebuild. The *modeled* latencies carry
//! those numbers; this bench measures the control-flow cost of the two
//! paths in the in-memory substrate (ordered cgroup writes vs kill +
//! recreate), which is what an adopter pays per call.

use std::hint::black_box;
use tango_bench::microbench;
use tango_hrm::Dvpa;
use tango_kube::{NativeVpa, Node};
use tango_types::{ClusterId, NodeId, Resources, ServiceClass, ServiceId, ServiceSpec, SimTime};

fn spec() -> ServiceSpec {
    ServiceSpec {
        id: ServiceId(0),
        name: "svc".into(),
        class: ServiceClass::Lc,
        min_request: Resources::cpu_mem(500, 256),
        work_milli_ms: 50_000,
        qos_target: SimTime::from_millis(300),
        payload_kib: 64,
    }
}

fn fresh_node() -> Node {
    let mut n = Node::new(
        NodeId(1),
        ClusterId(0),
        false,
        Resources::new(8_000, 16_384, 1_000, 100_000),
    );
    n.deploy_service(
        &spec(),
        Resources::new(1_000, 1_024, 100, 1_000),
        SimTime::ZERO,
    )
    .unwrap();
    n
}

fn main() {
    let small = Resources::new(1_000, 1_024, 100, 1_000);
    let big = Resources::new(2_000, 2_048, 200, 2_000);

    let mut node = fresh_node();
    let mut dvpa = Dvpa::default();
    let s = microbench::run("vpa_scaling/dvpa_expand_shrink_pair", 200, || {
        dvpa.scale(&mut node, ServiceId(0), black_box(big), SimTime::ZERO)
            .unwrap();
        dvpa.scale(&mut node, ServiceId(0), black_box(small), SimTime::ZERO)
            .unwrap();
    });
    microbench::report(&s);

    let mut node = fresh_node();
    let vpa = NativeVpa::default();
    let s = microbench::run("vpa_scaling/native_vpa_rebuild_pair", 200, || {
        vpa.scale(&mut node, ServiceId(0), black_box(big), SimTime::ZERO)
            .unwrap();
        vpa.scale(&mut node, ServiceId(0), black_box(small), SimTime::ZERO)
            .unwrap();
    });
    microbench::report(&s);
}

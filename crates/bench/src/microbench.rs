//! Minimal wall-clock micro-benchmark harness.
//!
//! The build environment has no access to crates.io, so criterion is not
//! available; this provides the subset the repo needs: warmup, repeated
//! timed batches, and a median-of-batches estimate that is robust to the
//! occasional scheduler hiccup. Results are deterministic in *work* (the
//! closures run fixed workloads off fixed seeds); only the timings vary
//! run to run.

use std::time::Instant;

/// One benchmark measurement.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Scenario name, e.g. `mcmf_solve/32x6`.
    pub name: String,
    /// Iterations actually timed (across all batches).
    pub iters: u64,
    /// Total wall time across all timed batches, in nanoseconds.
    pub total_ns: u128,
    /// Median-of-batches estimate of ns per iteration.
    pub ns_per_iter: f64,
    /// Set for non-timing samples: the measured value and its unit
    /// (e.g. a snapshot size in `"bytes"`). Timing fields are zero for
    /// these rows and the JSON emitter writes `value`/`unit` instead of
    /// `wall_ns`/`rate_per_sec`.
    pub metric: Option<(f64, &'static str)>,
}

impl Sample {
    /// Iterations per second implied by the per-iteration estimate.
    pub fn iters_per_sec(&self) -> f64 {
        if self.ns_per_iter > 0.0 {
            1e9 / self.ns_per_iter
        } else {
            0.0
        }
    }

    /// A non-timing measurement: a named value with a unit, carried in
    /// the same sample stream as the timings so it lands in the same
    /// committed JSON.
    pub fn metric(name: &str, value: f64, unit: &'static str) -> Sample {
        Sample {
            name: name.to_string(),
            iters: 1,
            total_ns: 0,
            ns_per_iter: 0.0,
            metric: Some((value, unit)),
        }
    }
}

/// Run `f` repeatedly for roughly `min_time_ms` of timed batches (after a
/// short warmup) and return the measurement. `std::hint::black_box` the
/// closure's result inside `f` when the compiler could otherwise discard
/// the work.
pub fn run<T>(name: &str, min_time_ms: u64, mut f: impl FnMut() -> T) -> Sample {
    // Warmup: one untimed call, then size the batch so each batch takes
    // roughly 10% of the measurement budget.
    let t0 = Instant::now();
    std::hint::black_box(f());
    let once_ns = t0.elapsed().as_nanos().max(1);
    let batch_budget_ns = (min_time_ms as u128) * 1_000_000 / 10;
    let batch_iters = (batch_budget_ns / once_ns).clamp(1, 1_000_000) as u64;

    let mut batch_estimates: Vec<f64> = Vec::new();
    let mut total_ns: u128 = 0;
    let mut iters: u64 = 0;
    let budget_ns = (min_time_ms as u128) * 1_000_000;
    while total_ns < budget_ns || batch_estimates.len() < 3 {
        let t = Instant::now();
        for _ in 0..batch_iters {
            std::hint::black_box(f());
        }
        let ns = t.elapsed().as_nanos();
        total_ns += ns;
        iters += batch_iters;
        batch_estimates.push(ns as f64 / batch_iters as f64);
        if batch_estimates.len() >= 200 {
            break;
        }
    }
    batch_estimates.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN timings"));
    let ns_per_iter = batch_estimates[batch_estimates.len() / 2];
    Sample {
        name: name.to_string(),
        iters,
        total_ns,
        ns_per_iter,
        metric: None,
    }
}

/// Print one sample in the fixed-width table format the bench binaries use.
pub fn report(s: &Sample) {
    if let Some((value, unit)) = s.metric {
        println!("{:<44} {value:>12.0} {unit}", s.name);
        return;
    }
    println!(
        "{:<44} {:>12.0} ns/iter {:>14.1} iters/s  ({} iters)",
        s.name,
        s.ns_per_iter,
        s.iters_per_sec(),
        s.iters
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_positive() {
        let s = run("noop_sum", 5, || (0..100u64).sum::<u64>());
        assert!(s.ns_per_iter > 0.0);
        assert!(s.iters >= 3);
        assert!(s.iters_per_sec() > 0.0);
    }
}

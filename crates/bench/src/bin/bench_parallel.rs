//! Thread-count sweep over the parallel-sensitive scenarios.
//!
//! Runs `mcmf_batch/8x32x6`, `gnn_forward/sage/4000` and
//! `system_tick/16` at 1, 2, 4 and 8 worker threads and writes the whole
//! sweep as one JSON document (`BENCH_parallel.json` in CI usage). The
//! work is bit-identical at every thread count — the deterministic-
//! parallelism contract of `tango-par` — so the sweep measures pure
//! scheduling overhead and speedup.
//!
//! Usage: `bench_parallel [out.json]`. Note: setting `TANGO_THREADS`
//! wins over the per-sweep thread count for the system scenario (env
//! beats config in `tango_par::resolve`), so leave it unset when
//! sweeping.

use std::hint::black_box;
use tango::{BePolicy, EdgeCloudSystem, TangoConfig};
use tango_bench::microbench::{self, Sample};
use tango_bench::scenarios::{emit, layered, make_graph, sweep_json};
use tango_flow::FlowGraph;
use tango_gnn::{Encoder, EncoderKind, GnnEncoder};
use tango_types::SimTime;

fn sweep(threads: usize) -> Vec<Sample> {
    tango_par::set_threads(threads);
    let mut out = Vec::new();

    let template = layered(32, 6);
    let mut graphs: Vec<FlowGraph> = (0..8).map(|_| template.clone()).collect();
    let pool = tango_par::Pool::new(threads);
    out.push(microbench::run("mcmf_batch/8x32x6", 300, || {
        for g in &mut graphs {
            g.clone_from(&template);
        }
        black_box(tango_flow::solve_batch(&pool, &mut graphs, 0, 1, i64::MAX))
    }));

    let graph = make_graph(4000, 8);
    let mut enc = GnnEncoder::paper_shape(EncoderKind::Sage { p: 3 }, 8, 32, 16, 5);
    out.push(microbench::run("gnn_forward/sage/4000", 300, || {
        black_box(enc.forward(black_box(&graph)))
    }));

    out.push(microbench::run("system_tick/16", 1_000, || {
        let mut cfg = TangoConfig::dual_space(16);
        cfg.be_policy = BePolicy::LoadGreedy;
        cfg.parallelism = Some(threads);
        let report = EdgeCloudSystem::new(cfg).run(SimTime::from_secs(1), "bench");
        black_box(report.lc_arrived)
    }));

    // Dispatch-heavy: high arrival rate over a 6-cluster metro region, so
    // most of the tick is the two-phase dispatch plane (wave formation +
    // parallel plan + sequential commit) — the scenario where dispatch-
    // phase threading shows up, as opposed to the sync-loop-dominated
    // scaled ticks above.
    out.push(microbench::run("dispatch_heavy/6", 1_000, || {
        let mut cfg = TangoConfig::physical_testbed();
        cfg.clusters = 6;
        cfg.topology.clusters = 6;
        cfg.workload.lc_rps = 900.0;
        cfg.workload.be_rps = 90.0;
        cfg.be_policy = BePolicy::LoadGreedy;
        cfg.parallelism = Some(threads);
        let report = EdgeCloudSystem::new(cfg).run(SimTime::from_secs(1), "bench");
        black_box(report.lc_arrived)
    }));

    out
}

fn main() {
    let out_path = std::env::args().nth(1);
    let mut sweeps: Vec<(usize, Vec<Sample>)> = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        eprintln!("-- threads = {threads} --");
        let samples = sweep(threads);
        for s in &samples {
            microbench::report(s);
        }
        sweeps.push((threads, samples));
    }
    let json = sweep_json(
        &sweeps,
        "work is bit-identical at every thread count; speedup over threads=1 requires host_cores > 1, otherwise the sweep measures pure spawn/join overhead",
    );
    emit(&json, out_path);
}

//! Fixed-seed baseline benchmark: the four scenarios the performance
//! work is judged against (MCMF solve, DSS-LC decision, GNN forward,
//! whole-system tick), measured with the microbench harness and written
//! as JSON so before/after numbers can be committed next to the code.
//!
//! Usage: `bench_baseline [out.json]` — defaults to stdout-only when no
//! path is given. Every scenario is deterministic in work (fixed seeds,
//! fixed workloads); only wall time varies between machines.

use std::hint::black_box;
use std::io::Write as _;
use tango::{BePolicy, EdgeCloudSystem, TangoConfig};
use tango_bench::microbench::{self, Sample};
use tango_flow::{FlowGraph, MinCostMaxFlow};
use tango_gnn::{Encoder, EncoderKind, FeatureGraph, GnnEncoder};
use tango_nn::Matrix;
use tango_sched::{CandidateNode, DssLc, TypeBatch};
use tango_types::{ClusterId, NodeId, RequestId, Resources, ServiceId, SimTime};

/// Deterministic layered flow graph (same generator as the mcmf bench).
fn layered(width: usize, layers: usize) -> FlowGraph {
    let n = 2 + layers * width;
    let mut g = FlowGraph::new(n);
    let node = |l: usize, w: usize| 2 + l * width + w;
    let mut x: u64 = 0x9E3779B97F4A7C15;
    let mut rnd = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    for w in 0..width {
        g.add_edge(0, node(0, w), (rnd() % 8 + 1) as i64, (rnd() % 50) as i64);
        g.add_edge(
            node(layers - 1, w),
            1,
            (rnd() % 8 + 1) as i64,
            (rnd() % 50) as i64,
        );
    }
    for l in 0..layers - 1 {
        for w in 0..width {
            for _ in 0..3 {
                let t = (rnd() % width as u64) as usize;
                g.add_edge(
                    node(l, w),
                    node(l + 1, t),
                    (rnd() % 6 + 1) as i64,
                    (rnd() % 100) as i64,
                );
            }
        }
    }
    g
}

/// Paper-like DSS-LC batch (same generator as the dss_latency bench).
fn make_batch(n_nodes: usize, n_requests: u64) -> TypeBatch {
    let nodes: Vec<CandidateNode> = (0..n_nodes)
        .map(|i| CandidateNode {
            node: NodeId(i as u32),
            cluster: ClusterId((i / 10) as u32),
            total: Resources::cpu_mem(8_000, 16_384),
            available_lc: Resources::cpu_mem(2_000 + (i as u64 % 7) * 500, 4_096),
            available_be: Resources::cpu_mem(2_000, 4_096),
            min_request: Resources::cpu_mem(500, 256),
            delay: SimTime::from_micros(300 + (i as u64 % 50) * 997),
            link_capacity: 64,
            slack: 1.0,
        })
        .collect();
    TypeBatch {
        service: ServiceId(0),
        requests: (0..n_requests).map(RequestId).collect(),
        nodes,
    }
}

/// Star-cluster feature graph (same generator as the gnn_forward bench).
fn make_graph(n: usize, f: usize) -> FeatureGraph {
    let data: Vec<f32> = (0..n * f)
        .map(|i| ((i * 37) % 101) as f32 / 101.0)
        .collect();
    let mut g = FeatureGraph::new(Matrix::from_vec(n, f, data).unwrap());
    for head in (0..n).step_by(10) {
        for i in head + 1..(head + 10).min(n) {
            g.add_edge(head, i);
        }
        if head + 10 < n {
            g.add_edge(head, head + 10);
        }
    }
    g
}

fn scenarios() -> Vec<Sample> {
    let mut out = Vec::new();

    // 1. MCMF: rebuild-from-template + solve, the DSS-LC inner engine.
    let template = layered(32, 6);
    let mut g = template.clone();
    out.push(microbench::run("mcmf_solve/32x6", 300, || {
        g.clone_from(&template);
        let r = MinCostMaxFlow::new(&mut g).solve(0, 1, i64::MAX);
        black_box(r)
    }));

    // 2. DSS-LC decision at the paper's 500-node scale, overloaded 2×
    //    so both the G_k and λ-augmented Ĝ′_k phases run.
    let batch = make_batch(500, 1000);
    let mut sched = DssLc::new(7);
    out.push(microbench::run("dss_lc_decision/500", 300, || {
        black_box(sched.plan(black_box(&batch)))
    }));

    // 3. GNN forward at 1000 nodes: the DCG-BE per-decision cost.
    let graph = make_graph(1000, 8);
    for (name, kind) in [
        ("sage", EncoderKind::Sage { p: 3 }),
        ("gcn", EncoderKind::Gcn),
    ] {
        let mut enc = GnnEncoder::paper_shape(kind, 8, 32, 16, 5);
        out.push(microbench::run(
            &format!("gnn_forward/{name}/1000"),
            300,
            || black_box(enc.forward(black_box(&graph))),
        ));
    }

    // 4. Whole-system tick: one simulated second of the dual-space
    //    system at 4 clusters.
    out.push(microbench::run("system_tick/4", 1_000, || {
        let mut cfg = TangoConfig::dual_space(4);
        cfg.be_policy = BePolicy::LoadGreedy;
        let report = EdgeCloudSystem::new(cfg).run(SimTime::from_secs(1), "bench");
        black_box(report.lc_arrived)
    }));

    out
}

/// Render samples as a JSON array (serde is unavailable offline; the
/// schema is flat so hand-rolled emission is adequate).
fn to_json(samples: &[Sample]) -> String {
    let mut s = String::from("[\n");
    for (i, smp) in samples.iter().enumerate() {
        s.push_str(&format!(
            "  {{\"scenario\": \"{}\", \"wall_ns\": {:.0}, \"ticks_per_sec\": {:.2}}}{}\n",
            smp.name,
            smp.ns_per_iter,
            smp.iters_per_sec(),
            if i + 1 < samples.len() { "," } else { "" }
        ));
    }
    s.push(']');
    s
}

fn main() {
    let out_path = std::env::args().nth(1);
    let samples = scenarios();
    for s in &samples {
        microbench::report(s);
    }
    let json = to_json(&samples);
    match out_path {
        Some(p) => {
            let mut f = std::fs::File::create(&p).expect("create output file");
            writeln!(f, "{json}").expect("write output file");
            eprintln!("wrote {p}");
        }
        None => println!("{json}"),
    }
}

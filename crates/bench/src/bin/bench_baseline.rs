//! Fixed-seed baseline benchmark: the scenarios the performance work is
//! judged against (MCMF solve, batched MCMF, DSS-LC decision, GNN
//! forward, whole-system tick), measured with the microbench harness and
//! written as JSON so before/after numbers can be committed next to the
//! code.
//!
//! Usage: `bench_baseline [out.json]` — defaults to stdout-only when no
//! path is given. Every scenario is deterministic in work (fixed seeds,
//! fixed workloads); only wall time varies between machines. The output
//! is stamped with the thread count and git revision it measured.

use std::hint::black_box;
use tango::{BePolicy, CheckpointPolicy, EdgeCloudSystem, FaultPlan, NodeRef, TangoConfig};
use tango_bench::microbench::{self, Sample};
use tango_bench::scenarios::{
    edge_spill_cfg, emit, layered, make_batch, make_graph, replay_sample_bench, td3_update_bench,
    to_json,
};
use tango_flow::{FlowGraph, MinCostMaxFlow};
use tango_gnn::{Encoder, EncoderKind, GnnEncoder};
use tango_sched::DssLc;
use tango_types::ClusterId;
use tango_types::SimTime;

fn scenarios() -> Vec<Sample> {
    let mut out = Vec::new();

    // 1. MCMF: rebuild-from-template + solve, the DSS-LC inner engine.
    let template = layered(32, 6);
    let mut g = template.clone();
    out.push(microbench::run("mcmf_solve/32x6", 300, || {
        g.clone_from(&template);
        let r = MinCostMaxFlow::new(&mut g).solve(0, 1, i64::MAX);
        black_box(r)
    }));

    // 2. Batched MCMF: eight independent instances through the pooled
    //    batch solver — the per-master fan-out shape of a dispatch round.
    let mut graphs: Vec<FlowGraph> = (0..8).map(|_| template.clone()).collect();
    let pool = tango_par::global();
    out.push(microbench::run("mcmf_batch/8x32x6", 300, || {
        for g in &mut graphs {
            g.clone_from(&template);
        }
        black_box(tango_flow::solve_batch(&pool, &mut graphs, 0, 1, i64::MAX))
    }));

    // 3. DSS-LC decision at the paper's 500-node scale, overloaded 2×
    //    so both the G_k and λ-augmented Ĝ′_k phases run.
    let batch = make_batch(500, 1000);
    let mut sched = DssLc::new(7);
    out.push(microbench::run("dss_lc_decision/500", 300, || {
        black_box(sched.plan(black_box(&batch)))
    }));

    // 4. GNN forward: the DCG-BE per-decision cost at 1000 nodes, plus
    //    the 4000-node shape where the row-parallel aggregation pays off.
    let graph = make_graph(1000, 8);
    for (name, kind) in [
        ("sage", EncoderKind::Sage { p: 3 }),
        ("gcn", EncoderKind::Gcn),
    ] {
        let mut enc = GnnEncoder::paper_shape(kind, 8, 32, 16, 5);
        out.push(microbench::run(
            &format!("gnn_forward/{name}/1000"),
            300,
            || black_box(enc.forward(black_box(&graph))),
        ));
    }
    let big_graph = make_graph(4000, 8);
    let mut big_enc = GnnEncoder::paper_shape(EncoderKind::Sage { p: 3 }, 8, 32, 16, 5);
    out.push(microbench::run("gnn_forward/sage/4000", 300, || {
        black_box(big_enc.forward(black_box(&big_graph)))
    }));

    // 5. Whole-system tick: one simulated second of the dual-space
    //    system at 4 and 16 clusters.
    for clusters in [4usize, 16] {
        out.push(microbench::run(
            &format!("system_tick/{clusters}"),
            1_000,
            || {
                let mut cfg = TangoConfig::dual_space(clusters);
                cfg.be_policy = BePolicy::LoadGreedy;
                let report = EdgeCloudSystem::new(cfg).run(SimTime::from_secs(1), "bench");
                black_box(report.lc_arrived)
            },
        ));
    }

    // 6. Paper-scale ticks (§6.1 dual space): one simulated second at the
    //    paper's 104 clusters, and at the ~1000-node preset whose worker
    //    draw pins total node count near the paper's. These are the
    //    scenarios the sharded sync loop and incremental candidate views
    //    are judged on.
    out.push(microbench::run("system_tick/104", 2_000, || {
        let mut cfg = TangoConfig::dual_space(104);
        cfg.be_policy = BePolicy::LoadGreedy;
        let report = EdgeCloudSystem::new(cfg).run(SimTime::from_secs(1), "bench-104");
        black_box(report.lc_arrived)
    }));
    out.push(microbench::run("system_tick/1000node", 2_000, || {
        let report =
            EdgeCloudSystem::new(TangoConfig::paper_scale()).run(SimTime::from_secs(1), "bench-1k");
        black_box(report.lc_arrived)
    }));

    // 7. Whole-system tick under churn: same 16-cluster second, but with
    //    timed crashes, a degraded link, and seeded MTTF/MTTR churn — the
    //    cost of failure-aware scheduling and recovery on the hot path.
    out.push(microbench::run("system_tick_churn/16", 1_000, || {
        let mut cfg = TangoConfig::dual_space(16);
        cfg.be_policy = BePolicy::LoadGreedy;
        cfg.faults = FaultPlan::new()
            .crash_for(
                SimTime::from_millis(200),
                NodeRef::Worker {
                    cluster: ClusterId(0),
                    index: 0,
                },
                SimTime::from_millis(300),
            )
            .degrade_link_for(
                SimTime::from_millis(100),
                ClusterId(1),
                ClusterId(2),
                4.0,
                2.0,
                SimTime::from_millis(500),
            )
            .node_churn(
                SimTime::from_millis(400),
                SimTime::from_millis(100),
                0xC4012,
            );
        let report = EdgeCloudSystem::new(cfg).run(SimTime::from_secs(1), "bench-churn");
        black_box(report.faults.node_crashes + report.lc_arrived)
    }));

    // 8. Checkpointing: encode and restore latency for a mid-run snapshot
    //    of the 16-cluster system, plus the snapshot's size. The encode
    //    scenario re-snapshots a restored run (the only public handle on
    //    a mid-run system); the restore scenario pays the full
    //    rebuild-and-overlay cost a resume pays.
    let mut snap_cfg = TangoConfig::dual_space(16);
    snap_cfg.be_policy = BePolicy::LoadGreedy;
    let (_, checkpoints) = EdgeCloudSystem::new(snap_cfg.clone())
        .run_checkpointed(
            SimTime::from_secs(1),
            "bench-snap",
            CheckpointPolicy {
                every_n_ticks: 5,
                keep_last_k: 1,
            },
        )
        .expect("load-greedy policies are snapshottable");
    let snap_bytes = checkpoints
        .last()
        .expect("at least one checkpoint")
        .bytes
        .clone();
    let resumed = EdgeCloudSystem::restore(snap_cfg.clone(), &snap_bytes).expect("restore");
    out.push(microbench::run("snap_encode/16", 300, || {
        black_box(resumed.snapshot().expect("encode"))
    }));
    out.push(microbench::run("snap_restore/16", 1_000, || {
        let r =
            EdgeCloudSystem::restore(snap_cfg.clone(), black_box(&snap_bytes)).expect("restore");
        black_box(r.now())
    }));
    // not a timing: a value/unit sample, so the size lands in the
    // committed JSON alongside the latencies without masquerading as one
    out.push(Sample::metric(
        "snap_size_bytes/16",
        snap_bytes.len() as f64,
        "bytes",
    ));

    // 9. TD3 learner hot path: one full update round (both critics plus
    //    the delayed actor/target rounds, amortized) on a 64-node graph,
    //    and a uniform 32-batch draw from a full 4096-slot replay ring.
    //    The workloads live in scenarios.rs, shared with the perf-smoke
    //    regression guard.
    out.push(td3_update_bench(300));
    out.push(replay_sample_bench(300));

    // 10. Elastic cloud tier: the 16-cluster tick with the cloud attached
    //    and the KubeDSM defrag pass spilling BE pods — prices candidate
    //    views over the extra tier plus migration and egress accounting
    //    on the hot path.
    out.push(microbench::run("edge_spill/16", 1_000, || {
        let report =
            EdgeCloudSystem::new(edge_spill_cfg(16)).run(SimTime::from_secs(1), "bench-spill");
        black_box(report.migrations_started + report.lc_arrived)
    }));

    out
}

fn main() {
    let out_path = std::env::args().nth(1);
    let samples = scenarios();
    for s in &samples {
        microbench::report(s);
    }
    emit(&to_json(&samples, tango_par::threads()), out_path);
}

//! CI perf-smoke driver: scaled-down versions of the paper-scale bench
//! scenarios, run once each in release mode. The job's contract is
//! liveness, not latency — it fails on panic (and CI wraps it in a
//! timeout), so the 104-cluster / 1000-node code paths cannot silently
//! rot between full bench runs.
//!
//! Usage: `perf_smoke` (no arguments). Prints one line per scenario with
//! wall time and a few sanity counters, exits non-zero on any violation.
//!
//! Besides liveness, the job carries latency assertions: scaled-down
//! `system_tick/104` runs (plain and mirror-attached) and a cloud-spill
//! `edge_spill/16` run must each finish within 1.25× the committed
//! `BENCH_baseline.json` figure (pro-rated to the smoke horizon), and
//! the `td3_update`/`replay_sample` learner microbenches must stay
//! within 1.25× their committed ns/iter. Set `TANGO_PERF_GUARD=off` to
//! demote the guard to a warning on hosts that are not comparable to
//! the baseline machine.

use std::time::Instant;
use tango::{BePolicy, EdgeCloudSystem, LcPolicy, TangoConfig};
use tango_types::SimTime;

fn run_scenario(name: &str, cfg: TangoConfig, horizon: SimTime) {
    let t = Instant::now();
    let sys = EdgeCloudSystem::new(cfg);
    let nodes = sys.node_count();
    let report = sys.run(horizon, name);
    let wall = t.elapsed();
    assert!(report.lc_arrived > 0, "{name}: no LC traffic arrived");
    assert!(
        report.lc_completed > 0,
        "{name}: no LC request completed — the dispatch path is dead"
    );
    println!(
        "{name:<28} {nodes:>5} nodes  {:>7} lc arrived  {:>6} lc done  {:>8.1} ms wall",
        report.lc_arrived,
        report.lc_completed,
        wall.as_secs_f64() * 1e3
    );
}

fn main() {
    // Learner microbenches first, while the process still looks like a
    // fresh bench_baseline run: the committed figures were measured
    // before any multi-threaded system scenario touched the allocator
    // or spun up the worker pool, and running them after the heavy
    // scenarios below skews them well past real regressions.
    microbench_guard(&baseline_json());

    // 104 clusters, short horizon: two sync ticks + a dozen dispatch
    // rounds over the full cluster fan-out.
    let mut cfg = TangoConfig::dual_space(104);
    cfg.be_policy = BePolicy::LoadGreedy;
    run_scenario("smoke/system_tick/104", cfg, SimTime::from_millis(250));

    // ~1000-node preset, same short horizon.
    run_scenario(
        "smoke/system_tick/1000node",
        TangoConfig::paper_scale(),
        SimTime::from_millis(250),
    );

    // thread-count invariance at scale: the same short 104-cluster run
    // must digest identically at 1 and 4 workers
    let digest = |threads: usize| {
        let mut cfg = TangoConfig::dual_space(104);
        cfg.be_policy = BePolicy::LoadGreedy;
        cfg.parallelism = Some(threads);
        EdgeCloudSystem::new(cfg)
            .run(SimTime::from_millis(250), "smoke-digest")
            .digest()
    };
    let (d1, d4) = (digest(1), digest(4));
    assert_eq!(
        d1, d4,
        "104-cluster digest differs across thread counts: {d1:#x} vs {d4:#x}"
    );
    println!("smoke/digest/104             0x{d1:016x} at 1 and 4 threads");

    // Dispatch-heavy smoke: high arrival rate over a metro region keeps
    // every master's queue non-empty, so the coalesced two-phase
    // dispatch plane (wave formation, parallel plan, sequential commit)
    // runs at full width every round.
    let mut heavy = TangoConfig::physical_testbed();
    heavy.clusters = 6;
    heavy.topology.clusters = 6;
    heavy.workload.lc_rps = 900.0;
    heavy.workload.be_rps = 90.0;
    heavy.lc_policy = LcPolicy::DssLc;
    heavy.be_policy = BePolicy::LoadGreedy;
    run_scenario("smoke/dispatch_heavy/6", heavy, SimTime::from_millis(500));

    regression_guard();
}

/// Extract `wall_ns` for one scenario from the committed baseline JSON
/// (flat hand-rolled schema; serde is unavailable offline).
fn baseline_wall_ns(json: &str, scenario: &str) -> Option<f64> {
    let needle = format!("\"scenario\": \"{scenario}\"");
    let line = json.lines().find(|l| l.contains(&needle))?;
    let tail = line.split("\"wall_ns\":").nth(1)?;
    tail.split(',').next()?.trim().parse::<f64>().ok()
}

/// Fail (or warn, under `TANGO_PERF_GUARD=off`) when a scaled-down
/// scenario runs slower than 1.25× the committed baseline, pro-rated
/// from the baseline's 1 s horizon to the smoke horizon. Uses the best
/// of three runs so one scheduling hiccup cannot fail CI.
fn baseline_json() -> String {
    match std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_baseline.json"
    )) {
        Ok(j) => j,
        Err(e) => panic!("regression guard: cannot read BENCH_baseline.json: {e}"),
    }
}

fn regression_guard() {
    let json = baseline_json();
    let budget_ms = |scenario: &str, smoke_ms: u64| {
        let base_ns = baseline_wall_ns(&json, scenario)
            .unwrap_or_else(|| panic!("BENCH_baseline.json carries a {scenario} sample"));
        base_ns / 1e6 * (smoke_ms as f64 / 1_000.0) * 1.25
    };

    // 104-cluster tick, 250 ms horizon: a plain run, and a
    // mirror-attached run under the same budget — the state mirror
    // publishes a frame per sync tick and must stay cheap enough to
    // disappear inside the 1.25x envelope.
    const SMOKE_MS: u64 = 250;
    let budget_104 = budget_ms("system_tick/104", SMOKE_MS);
    for (label, mirrored) in [
        ("smoke/regression_guard/104", false),
        ("smoke/regression_guard/104+mirror", true),
    ] {
        let mut best_ms = f64::INFINITY;
        for _ in 0..3 {
            let mut cfg = TangoConfig::dual_space(104);
            cfg.be_policy = BePolicy::LoadGreedy;
            let mut sys = EdgeCloudSystem::new(cfg); // build excluded, like the pro-rating
            let mirror = mirrored.then(|| sys.attach_mirror());
            let t = Instant::now();
            std::hint::black_box(sys.run(SimTime::from_millis(SMOKE_MS), "smoke-guard"));
            best_ms = best_ms.min(t.elapsed().as_secs_f64() * 1e3);
            if let Some(m) = mirror {
                assert!(
                    m.stats().full_frames >= 1,
                    "mirrored guard run published nothing"
                );
            }
        }
        enforce(label, best_ms, budget_104, SMOKE_MS);
    }

    // Cloud-spill tick, 500 ms horizon (the defrag pass first fires at
    // the second sync tick, so the shorter smoke window would never
    // migrate): migration + egress accounting must stay inside the same
    // 1.25x envelope, and pods must actually spill.
    const SPILL_MS: u64 = 500;
    let budget_spill = budget_ms("edge_spill/16", SPILL_MS);
    let mut best_ms = f64::INFINITY;
    for _ in 0..3 {
        let sys = EdgeCloudSystem::new(tango_bench::scenarios::edge_spill_cfg(16));
        let t = Instant::now();
        let report = sys.run(SimTime::from_millis(SPILL_MS), "smoke-spill");
        best_ms = best_ms.min(t.elapsed().as_secs_f64() * 1e3);
        assert!(
            report.migrations_started > 0,
            "edge_spill smoke never migrated — the scenario is dead weight"
        );
    }
    enforce(
        "smoke/regression_guard/spill16",
        best_ms,
        budget_spill,
        SPILL_MS,
    );
}

/// TD3 learner microbenches: per-iteration cost is horizon-independent
/// (the committed wall_ns for a microbench row is median ns/iter), so
/// compare ns/iter directly — no pro-rating. Best of three short reruns
/// of the exact bench_baseline workloads, same 1.25x envelope and
/// guard-off escape as [`enforce`].
fn microbench_guard(json: &str) {
    type BenchFn = fn(u64) -> tango_bench::microbench::Sample;
    let benches: [BenchFn; 2] = [
        tango_bench::scenarios::td3_update_bench,
        tango_bench::scenarios::replay_sample_bench,
    ];
    for bench in benches {
        let mut best: Option<tango_bench::microbench::Sample> = None;
        for _ in 0..3 {
            let s = bench(200);
            if best.as_ref().is_none_or(|b| s.ns_per_iter < b.ns_per_iter) {
                best = Some(s);
            }
        }
        let sample = best.expect("three runs produced a sample");
        let base_ns = baseline_wall_ns(json, &sample.name)
            .unwrap_or_else(|| panic!("BENCH_baseline.json carries a {} sample", sample.name));
        let budget_ns = base_ns * 1.25;
        let label = format!("smoke/regression_guard/{}", sample.name);
        println!(
            "{label:<34} {:>8.0} ns/iter (budget {budget_ns:.0} ns = 1.25x baseline)",
            sample.ns_per_iter
        );
        if sample.ns_per_iter > budget_ns {
            let msg = format!(
                "{label} took {:.0} ns/iter, over the {budget_ns:.0} ns budget (1.25x the \
                 committed BENCH_baseline.json figure) — either fix the regression or \
                 re-stamp the baseline",
                sample.ns_per_iter
            );
            if std::env::var("TANGO_PERF_GUARD").as_deref() == Ok("off") {
                eprintln!("warning (guard off): {msg}");
            } else {
                panic!("{msg}");
            }
        }
    }
}

/// Shared budget check: print the measurement, then fail (or warn under
/// `TANGO_PERF_GUARD=off`) when it exceeds the pro-rated budget.
fn enforce(label: &str, best_ms: f64, budget_ms: f64, smoke_ms: u64) {
    println!(
        "{label:<34} {best_ms:>8.1} ms wall (budget {budget_ms:.1} ms = \
         1.25x baseline pro-rated to {smoke_ms} ms)"
    );
    if best_ms > budget_ms {
        let msg = format!(
            "scaled-down {label} took {best_ms:.1} ms, over the {budget_ms:.1} ms \
             budget (1.25x the committed BENCH_baseline.json figure) — either fix the \
             regression or re-stamp the baseline"
        );
        if std::env::var("TANGO_PERF_GUARD").as_deref() == Ok("off") {
            eprintln!("warning (guard off): {msg}");
        } else {
            panic!("{msg}");
        }
    }
}

//! CI perf-smoke driver: scaled-down versions of the paper-scale bench
//! scenarios, run once each in release mode. The job's contract is
//! liveness, not latency — it fails on panic (and CI wraps it in a
//! timeout), so the 104-cluster / 1000-node code paths cannot silently
//! rot between full bench runs.
//!
//! Usage: `perf_smoke` (no arguments). Prints one line per scenario with
//! wall time and a few sanity counters, exits non-zero on any violation.

use std::time::Instant;
use tango::{BePolicy, EdgeCloudSystem, TangoConfig};
use tango_types::SimTime;

fn run_scenario(name: &str, cfg: TangoConfig, horizon: SimTime) {
    let t = Instant::now();
    let sys = EdgeCloudSystem::new(cfg);
    let nodes = sys.node_count();
    let report = sys.run(horizon, name);
    let wall = t.elapsed();
    assert!(report.lc_arrived > 0, "{name}: no LC traffic arrived");
    assert!(
        report.lc_completed > 0,
        "{name}: no LC request completed — the dispatch path is dead"
    );
    println!(
        "{name:<28} {nodes:>5} nodes  {:>7} lc arrived  {:>6} lc done  {:>8.1} ms wall",
        report.lc_arrived,
        report.lc_completed,
        wall.as_secs_f64() * 1e3
    );
}

fn main() {
    // 104 clusters, short horizon: two sync ticks + a dozen dispatch
    // rounds over the full cluster fan-out.
    let mut cfg = TangoConfig::dual_space(104);
    cfg.be_policy = BePolicy::LoadGreedy;
    run_scenario("smoke/system_tick/104", cfg, SimTime::from_millis(250));

    // ~1000-node preset, same short horizon.
    run_scenario(
        "smoke/system_tick/1000node",
        TangoConfig::paper_scale(),
        SimTime::from_millis(250),
    );

    // thread-count invariance at scale: the same short 104-cluster run
    // must digest identically at 1 and 4 workers
    let digest = |threads: usize| {
        let mut cfg = TangoConfig::dual_space(104);
        cfg.be_policy = BePolicy::LoadGreedy;
        cfg.parallelism = Some(threads);
        EdgeCloudSystem::new(cfg)
            .run(SimTime::from_millis(250), "smoke-digest")
            .digest()
    };
    let (d1, d4) = (digest(1), digest(4));
    assert_eq!(
        d1, d4,
        "104-cluster digest differs across thread counts: {d1:#x} vs {d4:#x}"
    );
    println!("smoke/digest/104             0x{d1:016x} at 1 and 4 threads");
}

//! Regenerate every table and figure of the Tango paper's evaluation.
//!
//! ```sh
//! cargo run --release -p tango-bench --bin figures -- all
//! cargo run --release -p tango-bench --bin figures -- fig9
//! TANGO_SCALE=4 cargo run --release -p tango-bench --bin figures -- fig13
//! ```
//!
//! Subcommands: `fig1 fig9 dvpa fig10 fig11ab dss_scaling fig11c fig11d
//! fig12 fig13 all`. `TANGO_SCALE` multiplies durations/cluster counts
//! toward paper scale.

use std::time::Instant;
use tango::runtime::{run_parallel, RunSpec};
use tango::{AllocatorKind, BePolicy, LcPolicy, TangoConfig};
use tango_bench::{improvement_pct, print_normalized_series, print_summaries, scale};
use tango_gnn::EncoderKind;
use tango_types::{Resources, SimTime};
use tango_workload::PatternKind;

fn secs(s: u64) -> SimTime {
    SimTime::from_secs(s * scale())
}

/// Fig. 1: the motivation measurement — LC-only provisioning over a
/// diurnal day: resource utilization stays low, latency sits near 300 ms.
fn fig1() {
    println!("\n### Figure 1: motivation — LC-only edge clouds over a day ###");
    let mut specs = Vec::new();
    for hour in (0..24).step_by(3) {
        let mut cfg = TangoConfig::physical_testbed().as_k8s_native();
        cfg.workload.be_rps = 0.0; // individually hosted LC services
        cfg.workload.lc_rps = 900.0; // provisioned for the diurnal peak
        cfg.workload.diurnal = true;
        cfg.seed = 42 + hour;
        // the trace generator maps sim time to hour-of-day from the seeded
        // start hour; emulate each sampling point with a short run.
        specs.push(RunSpec {
            label: format!("{hour:02}:00"),
            config: with_start_hour(cfg, hour as f64),
            duration: secs(10),
        });
    }
    let reports = run_parallel(specs);
    println!("hour   utilization   lc p95 (ms)");
    for r in &reports {
        println!(
            "{}   {:>11.3}   {:>10.1}",
            r.label, r.mean_utilization, r.lc_p95_ms
        );
    }
    let max_util = reports
        .iter()
        .map(|r| r.mean_utilization)
        .fold(0.0f64, f64::max);
    println!(
        "\npeak utilization {:.1}% — the paper's measurement reports <20% on average",
        max_util * 100.0
    );
}

/// The workload generator reads the start hour from the trace spec; we
/// emulate Fig. 1's day-long sweep by sweeping the diurnal phase through
/// the seed-adjacent field (kept out of TangoConfig to avoid a knob no
/// other experiment uses). Implemented by scaling rates directly.
fn with_start_hour(mut cfg: TangoConfig, hour: f64) -> TangoConfig {
    let profile = tango_workload::DiurnalProfile::default();
    let m = profile.multiplier(hour);
    cfg.workload.diurnal = false;
    cfg.workload.lc_rps *= m;
    cfg.workload.be_rps *= m;
    cfg
}

/// Fig. 9: HRM vs K8s-native under the three §7.1 patterns.
fn fig9() {
    println!("\n### Figure 9: HRM vs K8s-native under patterns P1/P2/P3 ###");
    let duration = secs(20);
    let mut specs = Vec::new();
    for pattern in PatternKind::ALL {
        for hrm in [true, false] {
            let mut cfg = TangoConfig::physical_testbed();
            cfg.workload.pattern = pattern;
            cfg.workload.lc_rps = 300.0;
            cfg.workload.be_rps = 40.0;
            cfg.lc_policy = LcPolicy::KsNative;
            cfg.be_policy = BePolicy::KsNative;
            if hrm {
                cfg.allocator = AllocatorKind::Hrm;
            } else {
                cfg.allocator = AllocatorKind::Static;
                cfg.reassurance = None;
            }
            specs.push(RunSpec {
                label: format!("{pattern:?}+{}", if hrm { "HRM" } else { "native" }),
                config: cfg,
                duration,
            });
        }
    }
    let reports = run_parallel(specs);
    println!("\n(b,c) per-class utilization averaged over the run:");
    println!("config            util_lc  util_be  util_overall");
    for r in &reports {
        let n = r.periods.len().max(1) as f64;
        let (lc, be) = r
            .periods
            .iter()
            .fold((0.0, 0.0), |(a, b), p| (a + p.util_lc, b + p.util_be));
        println!(
            "{:<16}  {:>7.3}  {:>7.3}  {:>12.3}",
            r.label,
            lc / n,
            be / n,
            r.mean_utilization
        );
    }
    print_normalized_series("(d) overall utilization per period", &reports, |p| {
        p.util_overall
    });
    let hrm: f64 = reports
        .iter()
        .filter(|r| r.label.contains("HRM"))
        .map(|r| r.mean_utilization)
        .sum::<f64>()
        / 3.0;
    let nat: f64 = reports
        .iter()
        .filter(|r| r.label.contains("native"))
        .map(|r| r.mean_utilization)
        .sum::<f64>()
        / 3.0;
    println!(
        "\nHRM improves mean utilization by {:+.1}% over K8s-native",
        improvement_pct(hrm, nat)
    );
}

/// §7.1 text: D-VPA single-op scaling vs delete-and-rebuild.
fn dvpa() {
    println!("\n### D-VPA scaling-operation cost (§7.1 text) ###");
    use tango_hrm::Dvpa;
    use tango_kube::{NativeVpa, Node};
    use tango_types::{ClusterId, NodeId, ServiceClass, ServiceId, ServiceSpec};

    let spec = ServiceSpec {
        id: ServiceId(0),
        name: "svc".into(),
        class: ServiceClass::Lc,
        min_request: Resources::cpu_mem(500, 256),
        work_milli_ms: 50_000,
        qos_target: SimTime::from_millis(300),
        payload_kib: 64,
    };
    let cap = Resources::new(8_000, 16_384, 1_000, 100_000);
    let mut node = Node::new(NodeId(1), ClusterId(0), false, cap);
    node.deploy_service(
        &spec,
        Resources::new(1_000, 1_024, 100, 1_000),
        SimTime::ZERO,
    )
    .unwrap();

    // modeled latencies
    let mut dvpa = Dvpa::default();
    let native = NativeVpa::default();
    let up = Resources::new(2_000, 2_048, 200, 2_000);
    let out = dvpa.scale(&mut node, spec.id, up, SimTime::ZERO).unwrap();
    println!(
        "D-VPA modeled op latency: {} ({} cgroup writes, no interruption)",
        SimTime::from_millis(23),
        out.writes
    );
    println!(
        "native VPA modeled rebuild: {} (pod deleted and recreated)",
        native.rebuild_delay
    );
    println!(
        "speedup factor: ~{}x (paper reports ~100x)",
        native.rebuild_delay.as_millis() / 23
    );

    // wall-clock of the in-memory control-flow itself
    let iters = 10_000;
    let t0 = Instant::now();
    for i in 0..iters {
        let target = if i % 2 == 0 {
            Resources::new(1_000, 1_024, 100, 1_000)
        } else {
            up
        };
        dvpa.scale(&mut node, spec.id, target, SimTime::ZERO)
            .unwrap();
    }
    println!(
        "in-memory control-flow cost: {:.2} µs/op over {iters} ops",
        t0.elapsed().as_secs_f64() * 1e6 / iters as f64
    );
}

fn pattern_cfg(pattern: PatternKind, reassure: bool) -> TangoConfig {
    // heavy LC load: QoS violations exist, so Algorithm 1's grow
    // direction has something to re-assure (§7.1's fluctuating regime)
    let mut cfg = TangoConfig::physical_testbed();
    cfg.workload.pattern = pattern;
    cfg.workload.lc_rps = 1_350.0;
    cfg.workload.be_rps = 16.0;
    if !reassure {
        cfg.reassurance = None;
    }
    cfg.be_policy = BePolicy::LoadGreedy; // isolate re-assurance, cheap BE side
    cfg
}

/// Fig. 10: QoS re-assurance on/off across P1/P2/P3.
fn fig10() {
    println!("\n### Figure 10: QoS re-assurance mechanism ###");
    let duration = secs(20);
    let mut specs = Vec::new();
    for pattern in PatternKind::ALL {
        for reassure in [true, false] {
            specs.push(RunSpec {
                label: format!("{pattern:?}+{}", if reassure { "reassure" } else { "off" }),
                config: pattern_cfg(pattern, reassure),
                duration,
            });
        }
    }
    let reports = run_parallel(specs);
    println!("\npattern        reassurance   qos      throughput");
    for r in &reports {
        println!(
            "{:<24}  {:>6.3}  {:>10}",
            r.label, r.qos_satisfaction, r.be_throughput
        );
    }
    for pattern in PatternKind::ALL {
        let with = reports
            .iter()
            .find(|r| r.label == format!("{pattern:?}+reassure"))
            .unwrap();
        let without = reports
            .iter()
            .find(|r| r.label == format!("{pattern:?}+off"))
            .unwrap();
        println!(
            "{pattern:?}: re-assurance moves QoS satisfaction {:+.1}% and throughput {:+.1}%",
            improvement_pct(with.qos_satisfaction, without.qos_satisfaction),
            improvement_pct(with.be_throughput as f64, without.be_throughput as f64),
        );
    }
}

fn lc_comparison_cfg(policy: LcPolicy) -> TangoConfig {
    // bursty LC around the testbed's ~1.3k req/s capacity: scheduling
    // quality only separates when spikes overload the preferred nodes
    let mut cfg = TangoConfig::physical_testbed();
    cfg.lc_policy = policy;
    cfg.be_policy = BePolicy::KsNative; // §7.2 fixes the BE side
    cfg.workload.pattern = PatternKind::P1;
    cfg.workload.lc_rps = 1_100.0;
    cfg.workload.be_rps = 20.0;
    cfg
}

/// Fig. 11(a,b): DSS-LC vs load-greedy / K8s-native / scoring.
/// Averaged over three trace seeds (the paper runs each experiment five
/// times).
fn fig11ab() {
    println!("\n### Figure 11(a,b): LC scheduling algorithms ###");
    let duration = secs(20);
    let policies = [
        LcPolicy::DssLc,
        LcPolicy::Scoring,
        LcPolicy::LoadGreedy,
        LcPolicy::KsNative,
    ];
    let seeds = [42u64, 1042, 2042];
    let mut specs = Vec::new();
    for &p in &policies {
        for &seed in &seeds {
            let mut cfg = lc_comparison_cfg(p);
            cfg.seed = seed;
            specs.push(RunSpec {
                label: format!("{}#{}", p.name(), seed),
                config: cfg,
                duration,
            });
        }
    }
    let all = run_parallel(specs);
    // aggregate means per policy; keep the first seed's series for plots
    let mut reports = Vec::new();
    for (i, &p) in policies.iter().enumerate() {
        let runs = &all[i * seeds.len()..(i + 1) * seeds.len()];
        let n = runs.len() as f64;
        let mut agg = runs[0].clone();
        agg.label = p.name().to_string();
        agg.qos_satisfaction = runs.iter().map(|r| r.qos_satisfaction).sum::<f64>() / n;
        agg.be_throughput = (runs.iter().map(|r| r.be_throughput).sum::<u64>() as f64 / n) as u64;
        agg.mean_utilization = runs.iter().map(|r| r.mean_utilization).sum::<f64>() / n;
        agg.lc_p95_ms = runs.iter().map(|r| r.lc_p95_ms).sum::<f64>() / n;
        agg.abandoned = (runs.iter().map(|r| r.abandoned).sum::<u64>() as f64 / n) as u64;
        reports.push(agg);
    }
    print_summaries("LC algorithm comparison (mean of 3 seeds)", &reports);
    print_normalized_series(
        "(a) per-period QoS-guarantee satisfaction rate",
        &reports,
        |p| {
            if p.lc_arrived == 0 {
                0.0
            } else {
                p.lc_satisfied as f64 / p.lc_arrived as f64
            }
        },
    );
    println!("\n(b) tail latency and abandoned requests:");
    for r in &reports {
        println!(
            "{:<12} p95 {:>7.1} ms, abandoned {:>5}",
            r.label, r.lc_p95_ms, r.abandoned
        );
    }
}

/// §7.2 text: DSS-LC decision time at 500 and 1000 nodes.
fn dss_scaling() {
    println!("\n### DSS-LC decision-time scaling (§7.2 text) ###");
    use tango_sched::{CandidateNode, DssLc, TypeBatch};
    use tango_types::{ClusterId, NodeId, RequestId, ServiceId};

    for &n_nodes in &[100usize, 250, 500, 1000] {
        let nodes: Vec<CandidateNode> = (0..n_nodes)
            .map(|i| CandidateNode {
                node: NodeId(i as u32),
                cluster: ClusterId((i / 10) as u32),
                total: Resources::cpu_mem(8_000, 16_384),
                available_lc: Resources::cpu_mem(2_000 + (i as u64 % 7) * 500, 4_096),
                available_be: Resources::cpu_mem(2_000, 4_096),
                min_request: Resources::cpu_mem(500, 256),
                delay: SimTime::from_micros(300 + (i as u64 % 50) * 997),
                link_capacity: 64,
                slack: 1.0,
                alive: true,
            })
            .collect();
        let batch = TypeBatch {
            service: ServiceId(0),
            requests: (0..(n_nodes as u64 * 2)).map(RequestId).collect(),
            nodes: nodes.into(),
        };
        let mut sched = DssLc::new(7);
        // warm up
        let _ = sched.plan(&batch);
        let iters = 20;
        let t0 = Instant::now();
        for _ in 0..iters {
            let _ = sched.plan(&batch);
        }
        let per = t0.elapsed().as_secs_f64() * 1e3 / iters as f64;
        println!("{n_nodes:>5} nodes: {per:>8.2} ms per decision round  (paper: 1.99 ms @500, 3.98 ms @1000)");
    }
}

fn be_comparison_cfg(policy: BePolicy) -> TangoConfig {
    // LC pressure + BE saturation: a wrong BE placement lands on an
    // LC-throttled node and drags throughput, so placement quality shows
    let mut cfg = TangoConfig::physical_testbed();
    cfg.lc_policy = LcPolicy::KsNative; // §7.2 fixes the LC side
    cfg.be_policy = policy;
    cfg.workload.pattern = PatternKind::P2; // periodic BE, random LC
    cfg.workload.lc_rps = 700.0;
    cfg.workload.be_rps = 70.0;
    cfg
}

/// Fig. 11(c): DCG-BE vs GNN-SAC / load-greedy / K8s-native.
/// Averaged over three trace seeds.
fn fig11c() {
    println!("\n### Figure 11(c): BE scheduling algorithms ###");
    let duration = secs(30);
    let policies = [
        BePolicy::DcgBe(EncoderKind::Sage { p: 3 }),
        BePolicy::GnnSac,
        BePolicy::LoadGreedy,
        BePolicy::KsNative,
    ];
    let seeds = [42u64, 1042, 2042];
    let mut specs = Vec::new();
    for &p in &policies {
        for &seed in &seeds {
            let mut cfg = be_comparison_cfg(p);
            cfg.seed = seed;
            specs.push(RunSpec {
                label: format!("{}#{}", p.name(), seed),
                config: cfg,
                duration,
            });
        }
    }
    let all = run_parallel(specs);
    let mut reports = Vec::new();
    for (i, &p) in policies.iter().enumerate() {
        let runs = &all[i * seeds.len()..(i + 1) * seeds.len()];
        let n = runs.len() as f64;
        let mut agg = runs[0].clone();
        agg.label = p.name().to_string();
        agg.qos_satisfaction = runs.iter().map(|r| r.qos_satisfaction).sum::<f64>() / n;
        agg.be_throughput = (runs.iter().map(|r| r.be_throughput).sum::<u64>() as f64 / n) as u64;
        agg.mean_utilization = runs.iter().map(|r| r.mean_utilization).sum::<f64>() / n;
        reports.push(agg);
    }
    print_summaries("BE algorithm comparison (mean of 3 seeds)", &reports);
    print_normalized_series("per-period BE throughput (first seed)", &reports, |p| {
        p.be_completed as f64
    });
}

/// Fig. 11(d): GNN structures inside DCG-BE.
fn fig11d() {
    println!("\n### Figure 11(d): GNN structure ablation ###");
    let duration = secs(30);
    let kinds = [
        ("GraphSAGE-A2C", EncoderKind::Sage { p: 3 }),
        ("GCN-A2C", EncoderKind::Gcn),
        ("GAT-A2C", EncoderKind::Gat),
        ("Native-A2C", EncoderKind::Native),
    ];
    let specs = kinds
        .iter()
        .map(|&(name, kind)| RunSpec {
            label: name.to_string(),
            config: be_comparison_cfg(BePolicy::DcgBe(kind)),
            duration,
        })
        .collect();
    let reports = run_parallel(specs);
    print_summaries("GNN ablation", &reports);
}

/// Fig. 12: the 4×4 LC × BE pairing grid.
fn fig12() {
    println!("\n### Figure 12: algorithm pairing analysis ###");
    let duration = secs(20);
    let lc_policies = [
        LcPolicy::DssLc,
        LcPolicy::Scoring,
        LcPolicy::LoadGreedy,
        LcPolicy::KsNative,
    ];
    let be_policies = [
        BePolicy::DcgBe(EncoderKind::Sage { p: 3 }),
        BePolicy::GnnSac,
        BePolicy::LoadGreedy,
        BePolicy::KsNative,
    ];
    let mut specs = Vec::new();
    for &lc in &lc_policies {
        for &be in &be_policies {
            let mut cfg = TangoConfig::physical_testbed();
            cfg.lc_policy = lc;
            cfg.be_policy = be;
            cfg.workload.pattern = PatternKind::P1;
            cfg.workload.lc_rps = 1_100.0;
            cfg.workload.be_rps = 40.0;
            specs.push(RunSpec {
                label: format!("{}+{}", lc.name(), be.name()),
                config: cfg,
                duration,
            });
        }
    }
    let reports = run_parallel(specs);
    println!("\n(a) QoS-guarantee satisfaction rate:");
    println!(
        "{:<12} {:>8} {:>8} {:>8} {:>8}",
        "LC \\ BE", "dcg-be", "gnn-sac", "greedy", "k8s"
    );
    for (i, &lc) in lc_policies.iter().enumerate() {
        print!("{:<12}", lc.name());
        for j in 0..4 {
            print!(" {:>8.3}", reports[i * 4 + j].qos_satisfaction);
        }
        println!();
    }
    println!("\n(b) BE throughput:");
    println!(
        "{:<12} {:>8} {:>8} {:>8} {:>8}",
        "LC \\ BE", "dcg-be", "gnn-sac", "greedy", "k8s"
    );
    for (i, &lc) in lc_policies.iter().enumerate() {
        print!("{:<12}", lc.name());
        for j in 0..4 {
            print!(" {:>8}", reports[i * 4 + j].be_throughput);
        }
        println!();
    }
    // headline claims
    let dss_qos: f64 = (0..4).map(|j| reports[j].qos_satisfaction).sum::<f64>() / 4.0;
    let others_qos: f64 = (4..16).map(|k| reports[k].qos_satisfaction).sum::<f64>() / 12.0;
    println!(
        "\nDSS-LC mean QoS vs other LC policies: {:+.1}% (paper: ≈+8.2%)",
        improvement_pct(dss_qos, others_qos)
    );
}

/// Fig. 13: Tango vs CERES vs DSACO at dual-space scale.
fn fig13() {
    println!("\n### Figure 13: large-scale hybrid-cluster validation ###");
    let clusters = (8 * scale() as usize).min(104);
    let duration = secs(20);
    let base = TangoConfig::dual_space(clusters);
    println!("({} clusters, {} simulated)", clusters, duration);
    let specs = vec![
        RunSpec {
            label: "Tango".into(),
            config: base.clone().as_tango(),
            duration,
        },
        RunSpec {
            label: "CERES".into(),
            config: base.clone().as_ceres(),
            duration,
        },
        RunSpec {
            label: "DSACO".into(),
            config: base.as_dsaco(),
            duration,
        },
    ];
    let reports = run_parallel(specs);
    print_summaries("large-scale comparison", &reports);
    print_normalized_series("(e) per-period QoS satisfaction", &reports, |p| {
        if p.lc_arrived == 0 {
            0.0
        } else {
            p.lc_satisfied as f64 / p.lc_arrived as f64
        }
    });
    let (tango, ceres, dsaco) = (&reports[0], &reports[1], &reports[2]);
    println!(
        "\nTango vs CERES utilization: {:+.1}% (paper: +36.9%)",
        improvement_pct(tango.mean_utilization, ceres.mean_utilization)
    );
    println!(
        "Tango vs DSACO QoS satisfaction: {:+.1}% (paper: +11.3%)",
        improvement_pct(tango.qos_satisfaction, dsaco.qos_satisfaction)
    );
    println!(
        "Tango vs CERES throughput: {:+.1}% (paper: +47.6%)",
        improvement_pct(tango.be_throughput as f64, ceres.be_throughput as f64)
    );
}

/// Ablations beyond the paper (DESIGN.md §7): each design choice toggled
/// in isolation.
fn ablations() {
    println!("\n### Ablations: Tango's design choices in isolation ###");
    let duration = secs(20);

    // (1) DSS-LC λ-overflow routing on/off, under bursty overload.
    let mut specs = Vec::new();
    for on in [true, false] {
        let mut cfg = lc_comparison_cfg(LcPolicy::DssLc);
        cfg.ablations.dss_overflow_routing = on;
        specs.push(RunSpec {
            label: format!("overflow-routing={on}"),
            config: cfg,
            duration,
        });
    }
    // Lighter BE regime for the learning-agent ablations: without the
    // context filter every infeasible pick bounces and re-trains, so the
    // decision count (and wall time) balloons at full load.
    let be_ablation_cfg = || {
        let mut cfg = TangoConfig::physical_testbed();
        cfg.lc_policy = LcPolicy::KsNative;
        cfg.be_policy = BePolicy::DcgBe(EncoderKind::Sage { p: 3 });
        cfg.workload.lc_rps = 200.0;
        cfg.workload.be_rps = 25.0;
        cfg
    };
    // (2) DCG-BE policy-context filter on/off.
    for on in [true, false] {
        let mut cfg = be_ablation_cfg();
        cfg.ablations.dcg_context_filter = on;
        specs.push(RunSpec {
            label: format!("context-filter={on}"),
            config: cfg,
            duration: secs(10),
        });
    }
    // (3) η sweep in the DCG-BE reward.
    for eta in [0.0f32, 1.0, 4.0] {
        let mut cfg = be_ablation_cfg();
        cfg.ablations.dcg_eta = eta;
        specs.push(RunSpec {
            label: format!("eta={eta}"),
            config: cfg,
            duration: secs(10),
        });
    }
    // (4) re-assurance thresholds (α, β) sweep.
    for (alpha, beta) in [(0.05, 0.7), (0.2, 0.4), (0.01, 0.95)] {
        let mut cfg = pattern_cfg(PatternKind::P1, true);
        if let Some(r) = cfg.reassurance.as_mut() {
            r.alpha = alpha;
            r.beta = beta;
        }
        specs.push(RunSpec {
            label: format!("alpha={alpha},beta={beta}"),
            config: cfg,
            duration,
        });
    }
    let reports = run_parallel(specs);
    print_summaries("ablation runs", &reports);
    println!("\nreading guide: overflow routing should cut abandonment; the");
    println!("context filter should protect throughput; large η biases toward");
    println!("long-term throughput; a narrow (α, β) band reduces adjustment churn.");
}

fn main() {
    let cmd = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    let t0 = Instant::now();
    match cmd.as_str() {
        "fig1" => fig1(),
        "fig9" => fig9(),
        "dvpa" => dvpa(),
        "fig10" => fig10(),
        "fig11ab" => fig11ab(),
        "dss_scaling" => dss_scaling(),
        "fig11c" => fig11c(),
        "fig11d" => fig11d(),
        "fig12" => fig12(),
        "fig13" => fig13(),
        "ablations" => ablations(),
        "all" => {
            fig1();
            fig9();
            dvpa();
            fig10();
            fig11ab();
            dss_scaling();
            fig11c();
            fig11d();
            fig12();
            fig13();
            ablations();
        }
        other => {
            eprintln!("unknown figure '{other}'; try: fig1 fig9 dvpa fig10 fig11ab dss_scaling fig11c fig11d fig12 fig13 ablations all");
            std::process::exit(2);
        }
    }
    eprintln!("\n[done in {:.1}s]", t0.elapsed().as_secs_f64());
}

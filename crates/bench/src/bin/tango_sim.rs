//! `tango-sim` — run one configured simulation from the command line and
//! print (or export) its report. The adopter-facing driver: everything the
//! figures harness sweeps is exposed as a flag here.
//!
//! ```sh
//! cargo run --release -p tango-bench --bin tango_sim -- \
//!     --clusters 8 --duration 30 --lc-policy dss-lc --be-policy dcg-be \
//!     --pattern p1 --lc-rps 800 --be-rps 40 --csv /tmp/run.csv
//! ```

use tango::{AllocatorKind, BePolicy, EdgeCloudSystem, LcPolicy, TangoConfig};
use tango_gnn::EncoderKind;
use tango_types::SimTime;
use tango_workload::PatternKind;

struct Args {
    clusters: Option<usize>,
    duration_s: u64,
    lc_policy: LcPolicy,
    be_policy: BePolicy,
    allocator: AllocatorKind,
    pattern: PatternKind,
    lc_rps: Option<f64>,
    be_rps: Option<f64>,
    seed: u64,
    reassurance: bool,
    local_only: bool,
    csv: Option<String>,
    periods: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: tango_sim [--clusters N] [--duration SECONDS] \
         [--lc-policy dss-lc|load-greedy|k8s-native|scoring|dsaco] \
         [--be-policy dcg-be|gnn-sac|load-greedy|k8s-native] \
         [--allocator hrm|static] [--pattern p1|p2|p3] \
         [--lc-rps F] [--be-rps F] [--seed N] [--no-reassurance] \
         [--local-only] [--csv PATH] [--periods]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        clusters: None,
        duration_s: 20,
        lc_policy: LcPolicy::DssLc,
        be_policy: BePolicy::DcgBe(EncoderKind::Sage { p: 3 }),
        allocator: AllocatorKind::Hrm,
        pattern: PatternKind::P3,
        lc_rps: None,
        be_rps: None,
        seed: 42,
        reassurance: true,
        local_only: false,
        csv: None,
        periods: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |i: &mut usize| -> String {
        *i += 1;
        argv.get(*i).cloned().unwrap_or_else(|| usage())
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--clusters" => args.clusters = value(&mut i).parse().ok(),
            "--duration" => args.duration_s = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--lc-policy" => {
                args.lc_policy = match value(&mut i).as_str() {
                    "dss-lc" => LcPolicy::DssLc,
                    "load-greedy" => LcPolicy::LoadGreedy,
                    "k8s-native" => LcPolicy::KsNative,
                    "scoring" => LcPolicy::Scoring,
                    "dsaco" => LcPolicy::Dsaco,
                    _ => usage(),
                }
            }
            "--be-policy" => {
                args.be_policy = match value(&mut i).as_str() {
                    "dcg-be" => BePolicy::DcgBe(EncoderKind::Sage { p: 3 }),
                    "dcg-be-gcn" => BePolicy::DcgBe(EncoderKind::Gcn),
                    "dcg-be-gat" => BePolicy::DcgBe(EncoderKind::Gat),
                    "gnn-sac" => BePolicy::GnnSac,
                    "load-greedy" => BePolicy::LoadGreedy,
                    "k8s-native" => BePolicy::KsNative,
                    _ => usage(),
                }
            }
            "--allocator" => {
                args.allocator = match value(&mut i).as_str() {
                    "hrm" => AllocatorKind::Hrm,
                    "static" => AllocatorKind::Static,
                    _ => usage(),
                }
            }
            "--pattern" => {
                args.pattern = match value(&mut i).as_str() {
                    "p1" => PatternKind::P1,
                    "p2" => PatternKind::P2,
                    "p3" => PatternKind::P3,
                    _ => usage(),
                }
            }
            "--lc-rps" => args.lc_rps = value(&mut i).parse().ok(),
            "--be-rps" => args.be_rps = value(&mut i).parse().ok(),
            "--seed" => args.seed = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--no-reassurance" => args.reassurance = false,
            "--local-only" => args.local_only = true,
            "--csv" => args.csv = Some(value(&mut i)),
            "--periods" => args.periods = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage()
            }
        }
        i += 1;
    }
    args
}

fn main() {
    let args = parse_args();
    let mut cfg = match args.clusters {
        Some(n) if n != 4 => TangoConfig::dual_space(n),
        _ => TangoConfig::physical_testbed(),
    };
    cfg.lc_policy = args.lc_policy;
    cfg.be_policy = args.be_policy;
    cfg.allocator = args.allocator;
    cfg.workload.pattern = args.pattern;
    if let Some(r) = args.lc_rps {
        cfg.workload.lc_rps = r;
    }
    if let Some(r) = args.be_rps {
        cfg.workload.be_rps = r;
    }
    cfg.seed = args.seed;
    if !args.reassurance {
        cfg.reassurance = None;
    }
    cfg.local_only = args.local_only;

    eprintln!(
        "tango-sim: {} clusters, {}s, lc={} be={} alloc={:?} pattern={:?} seed={}",
        cfg.clusters,
        args.duration_s,
        cfg.lc_policy.name(),
        cfg.be_policy.name(),
        cfg.allocator,
        cfg.workload.pattern,
        cfg.seed
    );
    let report = EdgeCloudSystem::new(cfg).run(SimTime::from_secs(args.duration_s), "tango-sim");
    println!("{}", report.summary());
    println!(
        "dvpa_ops={} be_evictions={} periods={}",
        report.dvpa_ops,
        report.be_evictions,
        report.periods.len()
    );
    if args.periods {
        print!("{}", report.periods_csv());
    }
    if let Some(path) = args.csv {
        report
            .write_csv(std::path::Path::new(&path))
            .unwrap_or_else(|e| {
                eprintln!("csv write failed: {e}");
                std::process::exit(1);
            });
        eprintln!("periods written to {path}");
    }
}

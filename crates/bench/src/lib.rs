//! Shared harness code for the figure-regeneration binary and the
//! benchmark binaries.

use tango::RunReport;

pub mod microbench;
pub mod scenarios;

/// Scale factor for experiment sizes, read from `TANGO_SCALE` (default 1).
/// The paper-scale runs (104 clusters, minutes of trace) set it higher.
pub fn scale() -> u64 {
    std::env::var("TANGO_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
        .clamp(1, 64)
}

/// Print a normalized series table: one row per period, one column per
/// report, values normalized to the column max.
pub fn print_normalized_series(
    title: &str,
    reports: &[RunReport],
    value: impl Fn(&tango_metrics::PeriodRecord) -> f64,
) {
    println!("\n-- {title} (normalized per column) --");
    print!("period");
    for r in reports {
        print!("  {:>12}", truncate(&r.label, 12));
    }
    println!();
    let maxes: Vec<f64> = reports
        .iter()
        .map(|r| {
            r.periods
                .iter()
                .map(&value)
                .fold(0.0f64, f64::max)
                .max(1e-9)
        })
        .collect();
    let rows = reports.iter().map(|r| r.periods.len()).max().unwrap_or(0);
    for i in 0..rows {
        print!("{i:>6}");
        for (r, &max) in reports.iter().zip(&maxes) {
            match r.periods.get(i) {
                Some(p) => print!("  {:>12.3}", value(p) / max),
                None => print!("  {:>12}", "-"),
            }
        }
        println!();
    }
}

/// Print the summary block for a set of reports.
pub fn print_summaries(title: &str, reports: &[RunReport]) {
    println!("\n== {title} ==");
    println!(
        "{:<24} {:>6} {:>10} {:>7} {:>8} {:>9}",
        "system", "qos", "throughput", "util", "p95(ms)", "abandoned"
    );
    for r in reports {
        println!(
            "{:<24} {:>6.3} {:>10} {:>7.3} {:>8.1} {:>9}",
            truncate(&r.label, 24),
            r.qos_satisfaction,
            r.be_throughput,
            r.mean_utilization,
            r.lc_p95_ms,
            r.abandoned
        );
    }
}

fn truncate(s: &str, n: usize) -> String {
    if s.len() <= n {
        s.to_string()
    } else {
        s[..n].to_string()
    }
}

/// Relative improvement of `a` over `b`, in percent.
pub fn improvement_pct(a: f64, b: f64) -> f64 {
    (a / b.max(1e-9) - 1.0) * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn improvement_pct_basics() {
        assert!((improvement_pct(1.5, 1.0) - 50.0).abs() < 1e-9);
        assert!((improvement_pct(1.0, 1.0)).abs() < 1e-9);
        assert!(improvement_pct(1.0, 0.0) > 0.0); // guarded denominator
    }

    #[test]
    fn scale_defaults_to_one() {
        // can't set env safely in parallel tests; just check the default
        // parse path handles garbage.
        assert!(scale() >= 1);
    }
}

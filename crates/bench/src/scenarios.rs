//! Shared fixed-seed scenario generators and the stamped JSON emitter
//! used by the baseline and parallel-sweep bench binaries.
//!
//! Every generator is deterministic (fixed xorshift seeds, fixed
//! shapes), so two runs of any bench binary measure identical work and
//! the committed JSON files are comparable across revisions.

use crate::microbench::Sample;
use tango::{BePolicy, CloudConfig, DefragConfig, TangoConfig};
use tango_flow::FlowGraph;
use tango_gnn::FeatureGraph;
use tango_nn::Matrix;
use tango_rl::{ReplayBuffer, Td3Agent, Td3Config};
use tango_sched::{CandidateNode, TypeBatch};
use tango_simcore::SimRng;
use tango_types::{ClusterId, NodeId, RequestId, Resources, ServiceId, SimTime};

/// Deterministic layered flow graph (same generator as the mcmf bench).
pub fn layered(width: usize, layers: usize) -> FlowGraph {
    let n = 2 + layers * width;
    let mut g = FlowGraph::new(n);
    let node = |l: usize, w: usize| 2 + l * width + w;
    let mut x: u64 = 0x9E3779B97F4A7C15;
    let mut rnd = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    for w in 0..width {
        g.add_edge(0, node(0, w), (rnd() % 8 + 1) as i64, (rnd() % 50) as i64);
        g.add_edge(
            node(layers - 1, w),
            1,
            (rnd() % 8 + 1) as i64,
            (rnd() % 50) as i64,
        );
    }
    for l in 0..layers - 1 {
        for w in 0..width {
            for _ in 0..3 {
                let t = (rnd() % width as u64) as usize;
                g.add_edge(
                    node(l, w),
                    node(l + 1, t),
                    (rnd() % 6 + 1) as i64,
                    (rnd() % 100) as i64,
                );
            }
        }
    }
    g
}

/// Paper-like DSS-LC batch (same generator as the dss_latency bench).
pub fn make_batch(n_nodes: usize, n_requests: u64) -> TypeBatch {
    let nodes: Vec<CandidateNode> = (0..n_nodes)
        .map(|i| CandidateNode {
            node: NodeId(i as u32),
            cluster: ClusterId((i / 10) as u32),
            total: Resources::cpu_mem(8_000, 16_384),
            available_lc: Resources::cpu_mem(2_000 + (i as u64 % 7) * 500, 4_096),
            available_be: Resources::cpu_mem(2_000, 4_096),
            min_request: Resources::cpu_mem(500, 256),
            delay: SimTime::from_micros(300 + (i as u64 % 50) * 997),
            link_capacity: 64,
            slack: 1.0,
            alive: true,
        })
        .collect();
    TypeBatch {
        service: ServiceId(0),
        requests: (0..n_requests).map(RequestId).collect(),
        nodes: nodes.into(),
    }
}

/// Star-cluster feature graph (same generator as the gnn_forward bench).
pub fn make_graph(n: usize, f: usize) -> FeatureGraph {
    let data: Vec<f32> = (0..n * f)
        .map(|i| ((i * 37) % 101) as f32 / 101.0)
        .collect();
    let mut g = FeatureGraph::new(Matrix::from_vec(n, f, data).unwrap());
    for head in (0..n).step_by(10) {
        for i in head + 1..(head + 10).min(n) {
            g.add_edge(head, i);
        }
        if head + 10 < n {
            g.add_edge(head, head + 10);
        }
    }
    g
}

/// Flash-crowd edge-overload scenario: a BE-heavy dual-space run with
/// the elastic cloud tier attached and an aggressive defrag cadence, so
/// the KubeDSM batch-migration pass fires on every other sync tick and
/// pods actually spill to the cloud. Shared by `bench_baseline` (which
/// stamps its wall time) and `perf_smoke` (which guards against it
/// regressing), so both price the same work.
pub fn edge_spill_cfg(clusters: usize) -> TangoConfig {
    let mut cfg = TangoConfig::dual_space(clusters);
    cfg.be_policy = BePolicy::LoadGreedy;
    cfg.workload.be_rps = cfg.workload.be_rps.max(12.0 * clusters as f64);
    cfg.cloud = Some(CloudConfig::default());
    cfg.defrag = Some(DefragConfig {
        every_n_ticks: 2,
        max_moves: 16,
        hot_threshold: 0.5,
        cold_threshold: 0.35,
    });
    cfg
}

/// TD3 learner update microbench: one act/observe step with
/// `train_interval: 1`, so every iteration pays a full update round
/// (both critic regressions, the delayed actor/target rounds amortized
/// in) on a 64-node graph. The agent is primed past one batch before
/// timing starts. Shared by `bench_baseline` (which stamps the figure)
/// and `perf_smoke` (which guards it), so both price the same work.
pub fn td3_update_bench(min_time_ms: u64) -> Sample {
    let graph = make_graph(64, 8);
    let mask = vec![true; 64];
    let mut agent = Td3Agent::new(Td3Config {
        feature_dim: 8,
        train_interval: 1,
        seed: 11,
        ..Td3Config::default()
    });
    for _ in 0..40 {
        agent.act(&graph, &mask);
        agent.observe(0.5, &graph, &mask, false);
    }
    crate::microbench::run("td3_update/64x32", min_time_ms, || {
        agent.act(std::hint::black_box(&graph), &mask);
        agent.observe(std::hint::black_box(0.5), &graph, &mask, false);
        std::hint::black_box(agent.train_rounds)
    })
}

/// Replay-ring sampling microbench: a uniform 32-draw from a full
/// 4096-slot ring — the index-drawing and slot-copy machinery every
/// `td3_update` round pays before its batch. Fixed-size elements on
/// purpose: graph-bearing transitions would turn the row into an
/// allocator benchmark whose figure tracks process malloc state instead
/// of the sampling path (the full clone cost is already priced inside
/// `td3_update`). Shared by `bench_baseline` and `perf_smoke` like
/// [`td3_update_bench`].
pub fn replay_sample_bench(min_time_ms: u64) -> Sample {
    let mut ring: ReplayBuffer<[f32; 8]> = ReplayBuffer::new(4096);
    for i in 0..4096u32 {
        ring.push([i as f32; 8]);
    }
    let mut rng = SimRng::new(23);
    crate::microbench::run("replay_sample/4096x32", min_time_ms, || {
        std::hint::black_box(ring.sample(32, &mut rng))
    })
}

/// Short git revision stamped into bench JSON, resolved at bench
/// *runtime* (never baked into the binary — a stale build must not
/// re-stamp an old rev). Resolution order:
///
/// 1. `TANGO_GIT_REV` — explicit override, for stamping the rev the
///    result will be committed under (re-stamp workflows run the bench
///    before the commit exists) and for checkouts without `git`.
/// 2. `git rev-parse --short HEAD` of the current directory.
///
/// If neither resolves, this panics with instructions instead of
/// silently emitting a reusable placeholder: committed bench JSON that
/// does not say what it measured is worse than no JSON.
pub fn git_rev() -> String {
    if let Ok(rev) = std::env::var("TANGO_GIT_REV") {
        let rev = rev.trim().to_string();
        if !rev.is_empty() {
            return rev;
        }
    }
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| {
            panic!(
                "bench stamping could not resolve a git revision: run inside a \
                 git checkout or set TANGO_GIT_REV=<rev>"
            )
        })
}

/// Render one sample as a JSON object (no trailing delimiter).
/// Timing samples carry `wall_ns` (median ns per iteration) and
/// `rate_per_sec` (iterations of the scenario per second — ticks for the
/// system scenarios, solves/forwards for the micro ones); non-timing
/// samples carry `value` and `unit` instead, so a byte count never
/// masquerades as a latency.
pub fn sample_json(s: &Sample) -> String {
    if let Some((value, unit)) = s.metric {
        return format!(
            "{{\"scenario\": \"{}\", \"value\": {value:.0}, \"unit\": \"{unit}\"}}",
            s.name
        );
    }
    format!(
        "{{\"scenario\": \"{}\", \"wall_ns\": {:.0}, \"rate_per_sec\": {:.2}}}",
        s.name,
        s.ns_per_iter,
        s.iters_per_sec()
    )
}

/// Render a stamped result set: `threads` + `git_rev` + the samples.
/// (serde is unavailable offline; the schema is flat so hand-rolled
/// emission is adequate.)
pub fn to_json(samples: &[Sample], threads: usize) -> String {
    let mut s = format!(
        "{{\n  \"threads\": {threads},\n  \"git_rev\": \"{}\",\n  \"samples\": [\n",
        git_rev()
    );
    for (i, smp) in samples.iter().enumerate() {
        s.push_str(&format!(
            "    {}{}\n",
            sample_json(smp),
            if i + 1 < samples.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}");
    s
}

/// Render a stamped thread-count sweep: `git_rev` + `host_cores` + a
/// free-form `note` + one sample row per thread count. Shared by the
/// sweep binaries so the committed JSON schema has a single source.
pub fn sweep_json(sweeps: &[(usize, Vec<Sample>)], note: &str) -> String {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut json = format!(
        "{{\n  \"git_rev\": \"{}\",\n  \"host_cores\": {cores},\n  \"note\": \"{note}\",\n  \"sweeps\": [\n",
        git_rev()
    );
    for (i, (threads, samples)) in sweeps.iter().enumerate() {
        json.push_str(&format!("    {{\"threads\": {threads}, \"samples\": ["));
        for (j, s) in samples.iter().enumerate() {
            json.push_str(&sample_json(s));
            if j + 1 < samples.len() {
                json.push_str(", ");
            }
        }
        json.push_str(&format!(
            "]}}{}\n",
            if i + 1 < sweeps.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}");
    json
}

/// Write `json` to `out_path`, or print it when no path is given — the
/// shared tail of every bench binary's `main`.
pub fn emit(json: &str, out_path: Option<String>) {
    use std::io::Write as _;
    match out_path {
        Some(p) => {
            let mut f = std::fs::File::create(&p).expect("create output file");
            writeln!(f, "{json}").expect("write output file");
            eprintln!("wrote {p}");
        }
        None => println!("{json}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::microbench;

    #[test]
    fn generators_are_deterministic() {
        let a = layered(8, 3);
        let b = layered(8, 3);
        assert_eq!(a.node_count(), b.node_count());
        assert_eq!(a.edge_count(), b.edge_count());
        let ba = make_batch(10, 20);
        assert_eq!(ba.nodes.len(), 10);
        assert_eq!(ba.requests.len(), 20);
        let g = make_graph(50, 4);
        assert_eq!(g.features.rows, 50);
    }

    #[test]
    fn json_is_stamped() {
        let s = microbench::run("probe", 1, || 1 + 1);
        let j = to_json(std::slice::from_ref(&s), 4);
        assert!(j.contains("\"threads\": 4"));
        assert!(j.contains("\"git_rev\""));
        assert!(j.contains("\"scenario\": \"probe\""));
        assert!(j.contains("\"rate_per_sec\""));

        let sw = sweep_json(&[(1, vec![s.clone()]), (4, vec![s])], "test note");
        assert!(sw.contains("\"host_cores\""));
        assert!(sw.contains("\"note\": \"test note\""));
        assert!(sw.contains("{\"threads\": 1, \"samples\": ["));
        assert!(sw.contains("{\"threads\": 4, \"samples\": ["));
    }

    #[test]
    fn metric_samples_emit_value_and_unit_not_timings() {
        let m = Sample::metric("snap_size_bytes/16", 46809.0, "bytes");
        let j = sample_json(&m);
        assert_eq!(
            j,
            "{\"scenario\": \"snap_size_bytes/16\", \"value\": 46809, \"unit\": \"bytes\"}"
        );
        assert!(!j.contains("wall_ns"), "byte count stamped as a latency");
        assert!(!j.contains("rate_per_sec"));
    }

    #[test]
    fn edge_spill_cfg_attaches_cloud_and_defrag() {
        let cfg = edge_spill_cfg(16);
        assert!(cfg.cloud.is_some());
        assert!(cfg.defrag.is_some());
        assert!(cfg.workload.be_rps >= 12.0 * 16.0);
    }
}

//! The event queue: a time-ordered priority queue with stable tie-breaking.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use tango_types::SimTime;

/// Internal heap entry. Ordered by (time, seq) ascending — `BinaryHeap` is a
/// max-heap so `Ord` is reversed.
struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // reversed for min-heap behaviour
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A future-event list. Events scheduled for the same instant pop in the
/// order they were pushed (FIFO), which keeps simulations deterministic.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedule `event` to fire at absolute time `at`.
    pub fn push(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Remove and return the earliest event, with its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.at, e.event))
    }

    /// Timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The sequence number the next [`EventQueue::push`] will take.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Every pending entry as `(at, seq, event)`, in **arbitrary** order
    /// (the heap's internal layout). Checkpointing sorts by `(at, seq)`
    /// before encoding so snapshots are deterministic.
    pub fn entries(&self) -> impl Iterator<Item = (SimTime, u64, &E)> {
        self.heap.iter().map(|e| (e.at, e.seq, &e.event))
    }

    /// Rebuild a queue from captured entries and the captured `next_seq`
    /// counter. Entry order does not matter: ordering is re-established
    /// by the heap, and the original sequence numbers keep same-time
    /// events popping exactly as they would have in the original run.
    pub fn from_entries(entries: Vec<(SimTime, u64, E)>, next_seq: u64) -> Self {
        let heap = entries
            .into_iter()
            .map(|(at, seq, event)| Entry { at, seq, event })
            .collect();
        EventQueue { heap, next_seq }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(30), "c");
        q.push(SimTime::from_millis(10), "a");
        q.push(SimTime::from_millis(20), "b");
        assert_eq!(q.pop(), Some((SimTime::from_millis(10), "a")));
        assert_eq!(q.pop(), Some((SimTime::from_millis(20), "b")));
        assert_eq!(q.pop(), Some((SimTime::from_millis(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t, i)));
        }
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(7), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(7)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(10), 1);
        q.push(SimTime::from_millis(5), 0);
        assert_eq!(q.pop().unwrap().1, 0);
        q.push(SimTime::from_millis(7), 2);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 1);
    }
}

//! The event queue: a time-ordered priority queue with stable tie-breaking.
//!
//! Implemented as a bucketed **calendar queue** (a timing wheel with a
//! far-future overflow heap) rather than a single binary heap. The hot
//! traffic of a Tango run — dispatch rounds every 10 ms, deliveries a few
//! ms out, node-completion checks — lands within about a simulated second
//! of "now", so those events go straight into a ring of fixed-width time
//! buckets: push is a binary-search insert into a short sorted bucket,
//! pop is an O(1) `Vec::pop` off the cursor bucket. Only genuinely
//! far-future events (BE patience timers, long completions) pay for the
//! heap, and they migrate into the ring as the cursor sweeps forward.
//! Bucket vectors keep their capacity across drains, so steady-state
//! operation allocates nothing per push.
//!
//! Ordering contract (unchanged from the binary-heap implementation):
//! events pop in ascending `(time, seq)` order, so events scheduled for
//! the same instant pop in the order they were pushed (FIFO), which keeps
//! simulations deterministic. Snapshot wire-compat is likewise unchanged:
//! [`EventQueue::entries`] exposes every pending `(at, seq, event)` and
//! [`EventQueue::from_entries`] rebuilds from them, with checkpointing
//! sorting by `(at, seq)` before encoding exactly as before.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use tango_types::SimTime;

/// log2 of the bucket width in microseconds: 1024 µs ≈ 1 ms buckets.
const BUCKET_SHIFT: u32 = 10;
/// Number of ring buckets (must be a power of two): with 1024 µs buckets
/// the ring spans ~1.07 simulated seconds ahead of the cursor.
const NUM_BUCKETS: usize = 1024;

/// Absolute bucket index ("day") of a timestamp.
#[inline]
fn day_of(at: SimTime) -> u64 {
    at.as_micros() >> BUCKET_SHIFT
}

/// Internal entry. Ordered by (time, seq) ascending — `BinaryHeap` is a
/// max-heap so `Ord` is reversed (the heap only holds overflow entries).
struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> Entry<E> {
    #[inline]
    fn key(&self) -> (SimTime, u64) {
        (self.at, self.seq)
    }
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // reversed for min-heap behaviour
        other.key().cmp(&self.key())
    }
}

/// A future-event list. Events scheduled for the same instant pop in the
/// order they were pushed (FIFO), which keeps simulations deterministic.
pub struct EventQueue<E> {
    /// Ring of time buckets. Bucket `d % NUM_BUCKETS` holds entries whose
    /// day `d` lies in `[cursor_day, cursor_day + NUM_BUCKETS)`, kept
    /// sorted **descending** by `(at, seq)` so the minimum pops off the
    /// tail in O(1).
    buckets: Vec<Vec<Entry<E>>>,
    /// Day the cursor bucket corresponds to; nothing earlier than the
    /// cursor bucket remains anywhere in the ring.
    cursor_day: u64,
    /// Entries currently held in the ring (as opposed to `overflow`).
    ring_len: usize,
    /// Entries beyond the ring window, drained in as the cursor advances.
    overflow: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue.
    pub fn new() -> Self {
        EventQueue {
            buckets: (0..NUM_BUCKETS).map(|_| Vec::new()).collect(),
            cursor_day: 0,
            ring_len: 0,
            overflow: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedule `event` to fire at absolute time `at`.
    pub fn push(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.push_raw(Entry { at, seq, event });
    }

    /// Insert an entry with an already-assigned sequence number.
    fn push_raw(&mut self, e: Entry<E>) {
        let day = day_of(e.at);
        if day >= self.cursor_day + NUM_BUCKETS as u64 {
            self.overflow.push(e);
            return;
        }
        // Entries at or before the cursor day (the engine clamps
        // past-scheduling to "now", but the queue stays correct for
        // arbitrary pushes) share the cursor bucket: every earlier bucket
        // has already fully drained, and in-bucket ordering still puts
        // them ahead of later keys.
        let day = day.max(self.cursor_day);
        let bucket = &mut self.buckets[(day % NUM_BUCKETS as u64) as usize];
        // Sorted-descending insert; the common case (monotonically
        // increasing schedule order within a bucket) hits index 0.
        let key = e.key();
        let idx = bucket
            .binary_search_by(|probe| key.cmp(&probe.key()))
            .unwrap_or_else(|i| i);
        bucket.insert(idx, e);
        self.ring_len += 1;
    }

    /// Advance the cursor to the first non-empty bucket and migrate any
    /// overflow entries whose day has entered the ring window. No-op when
    /// the cursor bucket already has entries.
    fn advance_to_next(&mut self) {
        loop {
            if !self.buckets[(self.cursor_day % NUM_BUCKETS as u64) as usize].is_empty() {
                return;
            }
            if self.ring_len == 0 {
                // Ring is dry: jump straight to the earliest overflow
                // day (if any) instead of stepping bucket by bucket.
                match self.overflow.peek() {
                    Some(top) => {
                        let top_day = day_of(top.at);
                        debug_assert!(top_day >= self.cursor_day);
                        self.cursor_day = self.cursor_day.max(top_day);
                    }
                    None => return,
                }
            } else {
                self.cursor_day += 1;
            }
            // The window moved: any overflow entries now inside it join
            // the ring.
            while let Some(top) = self.overflow.peek() {
                if day_of(top.at) >= self.cursor_day + NUM_BUCKETS as u64 {
                    break;
                }
                let e = self.overflow.pop().expect("peeked overflow entry");
                let day = day_of(e.at);
                let bucket = &mut self.buckets[(day % NUM_BUCKETS as u64) as usize];
                let key = e.key();
                let idx = bucket
                    .binary_search_by(|probe| key.cmp(&probe.key()))
                    .unwrap_or_else(|i| i);
                bucket.insert(idx, e);
                self.ring_len += 1;
            }
        }
    }

    /// Remove and return the earliest event, with its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.advance_to_next();
        let bucket = &mut self.buckets[(self.cursor_day % NUM_BUCKETS as u64) as usize];
        let e = bucket.pop()?;
        self.ring_len -= 1;
        Some((e.at, e.event))
    }

    /// Timestamp of the earliest pending event. Takes `&mut self` because
    /// locating the minimum may sweep the calendar cursor forward (a pure
    /// cache-state movement; the pending set is unchanged).
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.advance_to_next();
        self.buckets[(self.cursor_day % NUM_BUCKETS as u64) as usize]
            .last()
            .map(|e| e.at)
    }

    /// Pop the earliest event only if it fires exactly at `at` and
    /// satisfies `pred` — the engine's same-instant coalescing primitive.
    pub fn pop_at_if(&mut self, at: SimTime, pred: impl FnOnce(&E) -> bool) -> Option<E> {
        self.advance_to_next();
        let bucket = &mut self.buckets[(self.cursor_day % NUM_BUCKETS as u64) as usize];
        let head = bucket.last()?;
        if head.at != at || !pred(&head.event) {
            return None;
        }
        let e = bucket.pop().expect("checked non-empty");
        self.ring_len -= 1;
        Some(e.event)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.ring_len + self.overflow.len()
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The sequence number the next [`EventQueue::push`] will take.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Every pending entry as `(at, seq, event)`, in **arbitrary** order
    /// (the calendar's internal layout). Checkpointing sorts by
    /// `(at, seq)` before encoding so snapshots are deterministic.
    pub fn entries(&self) -> impl Iterator<Item = (SimTime, u64, &E)> {
        self.buckets
            .iter()
            .flatten()
            .chain(self.overflow.iter())
            .map(|e| (e.at, e.seq, &e.event))
    }

    /// Rebuild a queue from captured entries and the captured `next_seq`
    /// counter. Entry order does not matter: ordering is re-established
    /// by the calendar, and the original sequence numbers keep same-time
    /// events popping exactly as they would have in the original run.
    pub fn from_entries(entries: Vec<(SimTime, u64, E)>, next_seq: u64) -> Self {
        let mut q = EventQueue::new();
        q.cursor_day = entries
            .iter()
            .map(|(at, _, _)| day_of(*at))
            .min()
            .unwrap_or(0);
        for (at, seq, event) in entries {
            q.push_raw(Entry { at, seq, event });
        }
        q.next_seq = next_seq;
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(30), "c");
        q.push(SimTime::from_millis(10), "a");
        q.push(SimTime::from_millis(20), "b");
        assert_eq!(q.pop(), Some((SimTime::from_millis(10), "a")));
        assert_eq!(q.pop(), Some((SimTime::from_millis(20), "b")));
        assert_eq!(q.pop(), Some((SimTime::from_millis(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t, i)));
        }
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(7), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(7)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(10), 1);
        q.push(SimTime::from_millis(5), 0);
        assert_eq!(q.pop().unwrap().1, 0);
        q.push(SimTime::from_millis(7), 2);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 1);
    }

    #[test]
    fn far_future_events_round_trip_the_overflow_heap() {
        let mut q = EventQueue::new();
        // Far beyond the ring window (~1 s): exercises overflow + the
        // cursor jump when the ring drains dry.
        q.push(SimTime::from_secs(90), "far");
        q.push(SimTime::from_millis(1), "near");
        q.push(SimTime::from_secs(60), "mid");
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop(), Some((SimTime::from_millis(1), "near")));
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(60)));
        assert_eq!(q.pop(), Some((SimTime::from_secs(60), "mid")));
        assert_eq!(q.pop(), Some((SimTime::from_secs(90), "far")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn far_future_fifo_survives_overflow_migration() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(30);
        for i in 0..50 {
            q.push(t, i);
        }
        for i in 0..50 {
            assert_eq!(q.pop(), Some((t, i)));
        }
    }

    #[test]
    fn pop_at_if_takes_only_matching_same_instant_head() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(10);
        q.push(t, 1);
        q.push(t, 2);
        q.push(SimTime::from_millis(20), 3);
        assert_eq!(q.pop(), Some((t, 1)));
        // head matches time + predicate
        assert_eq!(q.pop_at_if(t, |&e| e == 2), Some(2));
        // head is at 20ms now: same-instant filter refuses it
        assert_eq!(q.pop_at_if(t, |_| true), None);
        assert_eq!(q.pop_at_if(SimTime::from_millis(20), |_| false), None);
        assert_eq!(q.pop(), Some((SimTime::from_millis(20), 3)));
    }

    #[test]
    fn from_entries_restores_order_and_seq() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(10), "a");
        q.push(SimTime::from_millis(10), "b");
        q.push(SimTime::from_secs(45), "z");
        q.push(SimTime::from_millis(5), "first");
        let entries: Vec<(SimTime, u64, &str)> =
            q.entries().map(|(at, seq, e)| (at, seq, *e)).collect();
        let next_seq = q.next_seq();
        let mut r = EventQueue::from_entries(entries, next_seq);
        assert_eq!(r.len(), 4);
        assert_eq!(r.next_seq(), next_seq);
        assert_eq!(r.pop(), Some((SimTime::from_millis(5), "first")));
        assert_eq!(r.pop(), Some((SimTime::from_millis(10), "a")));
        assert_eq!(r.pop(), Some((SimTime::from_millis(10), "b")));
        assert_eq!(r.pop(), Some((SimTime::from_secs(45), "z")));
    }
}

//! Deterministic discrete-event simulation engine.
//!
//! The Tango paper evaluates on a "dual-space" system (§6.1): four physical
//! K8s clusters plus one hundred *behaviour-level simulated* clusters whose
//! request lifecycles are driven by recorded service-time models. This crate
//! provides the clockwork for that twin space: a monotonic event queue with
//! stable tie-breaking, a seedable RNG with the distributions the workload
//! generator needs, and a tiny engine loop.
//!
//! Determinism contract: given the same seed and the same sequence of
//! scheduled events, a simulation produces bit-identical results. All
//! ordering ties are broken by insertion sequence number, never by pointer
//! or hash order.

pub mod engine;
pub mod queue;
pub mod rng;

pub use engine::{Engine, EventHandler};
pub use queue::EventQueue;
pub use rng::SimRng;

//! Seedable random number generation for simulations.
//!
//! A thin, fully deterministic PRNG (xoshiro256**) plus the handful of
//! distributions the workload synthesizer and schedulers need: uniform,
//! exponential inter-arrivals, normal (Box–Muller), log-normal and Pareto
//! demand distributions, and Fisher–Yates shuffling (the random sorting
//! function ρ(·) of DSS-LC, §5.2.2).
//!
//! We implement the generator ourselves rather than pulling `rand`'s
//! `StdRng` so that streams are stable across dependency upgrades — run
//! reproducibility is part of the experiment contract.

/// A deterministic xoshiro256** PRNG.
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Create a generator from a 64-bit seed. Any seed (including 0) yields
    /// a well-mixed state via SplitMix64 expansion.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        SimRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Derive an independent child stream (e.g. one per cluster) from this
    /// generator; advances `self`.
    pub fn fork(&mut self) -> SimRng {
        SimRng::new(self.next_u64() ^ 0xA5A5_5A5A_DEAD_BEEF)
    }

    /// The raw xoshiro256** state, for checkpointing. Restoring via
    /// [`SimRng::from_state`] resumes the stream exactly where it was.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuild a generator from a captured [`SimRng::state`].
    pub fn from_state(s: [u64; 4]) -> Self {
        SimRng { s }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform float in [0, 1).
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 high bits -> [0,1) with full double precision.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in [0, n). Returns 0 when n == 0.
    /// Uses Lemire's multiply-shift rejection method for unbiased sampling.
    pub fn next_below(&mut self, n: u64) -> u64 {
        if n == 0 {
            return 0;
        }
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(n as u128);
            let low = m as u64;
            if low >= n {
                return (m >> 64) as u64;
            }
            // rejection zone: low < n; accept only if low >= (2^64 mod n)
            let threshold = n.wrapping_neg() % n;
            if low >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform integer in [lo, hi] inclusive. `lo > hi` returns `lo`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        if lo >= hi {
            return lo;
        }
        lo + self.next_below(hi - lo + 1)
    }

    /// Uniform float in [lo, hi).
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Bernoulli trial with probability `p` of `true`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Exponentially distributed value with the given mean (inter-arrival
    /// times of a Poisson process).
    pub fn exponential(&mut self, mean: f64) -> f64 {
        debug_assert!(mean > 0.0);
        let u = loop {
            let u = self.next_f64();
            if u > 0.0 {
                break u;
            }
        };
        -mean * u.ln()
    }

    /// Standard-normal variate via Box–Muller.
    pub fn standard_normal(&mut self) -> f64 {
        let u1 = loop {
            let u = self.next_f64();
            if u > 0.0 {
                break u;
            }
        };
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Normal variate with given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.standard_normal()
    }

    /// Log-normal variate parameterized by the *underlying* normal's μ, σ.
    /// Heavy-tailed resource demands in cluster traces are classically
    /// log-normal.
    pub fn log_normal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// Pareto variate with scale `x_min` and shape `alpha` (> 0).
    pub fn pareto(&mut self, x_min: f64, alpha: f64) -> f64 {
        debug_assert!(alpha > 0.0 && x_min > 0.0);
        let u = loop {
            let u = self.next_f64();
            if u > 0.0 {
                break u;
            }
        };
        x_min / u.powf(1.0 / alpha)
    }

    /// Fisher–Yates shuffle — the random sorting function ρ(·) DSS-LC uses
    /// to split overload-case requests (§5.2.2).
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        let n = items.len();
        for i in (1..n).rev() {
            let j = self.next_below((i + 1) as u64) as usize;
            items.swap(i, j);
        }
    }

    /// Sample one index from a slice of non-negative weights. Returns
    /// `None` if the weights are empty or sum to zero.
    pub fn weighted_index(&mut self, weights: &[f64]) -> Option<usize> {
        let total: f64 = weights.iter().filter(|w| w.is_finite() && **w > 0.0).sum();
        if total <= 0.0 {
            return None;
        }
        let mut target = self.next_f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            if w.is_finite() && w > 0.0 {
                target -= w;
                if target <= 0.0 {
                    return Some(i);
                }
            }
        }
        // floating-point slack: return last positive weight
        weights.iter().rposition(|w| w.is_finite() && *w > 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 3);
    }

    #[test]
    fn forked_streams_are_independent_but_deterministic() {
        let mut parent1 = SimRng::new(7);
        let mut parent2 = SimRng::new(7);
        let mut c1 = parent1.fork();
        let mut c2 = parent2.fork();
        for _ in 0..100 {
            assert_eq!(c1.next_u64(), c2.next_u64());
        }
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = SimRng::new(3);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_below_bounds_and_zero() {
        let mut r = SimRng::new(9);
        assert_eq!(r.next_below(0), 0);
        for _ in 0..10_000 {
            assert!(r.next_below(7) < 7);
        }
    }

    #[test]
    fn next_below_is_roughly_uniform() {
        let mut r = SimRng::new(11);
        let mut counts = [0u32; 5];
        for _ in 0..50_000 {
            counts[r.next_below(5) as usize] += 1;
        }
        for &c in &counts {
            // expected 10_000 per bucket; allow ±5%
            assert!((9_500..10_500).contains(&c), "counts={counts:?}");
        }
    }

    #[test]
    fn range_u64_inclusive_and_degenerate() {
        let mut r = SimRng::new(5);
        for _ in 0..1000 {
            let v = r.range_u64(3, 6);
            assert!((3..=6).contains(&v));
        }
        assert_eq!(r.range_u64(9, 9), 9);
        assert_eq!(r.range_u64(9, 2), 9);
    }

    #[test]
    fn exponential_mean_converges() {
        let mut r = SimRng::new(13);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.exponential(50.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 50.0).abs() < 1.5, "mean={mean}");
    }

    #[test]
    fn normal_moments_converge() {
        let mut r = SimRng::new(17);
        let n = 100_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal(10.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean={mean}");
        assert!((var - 4.0).abs() < 0.15, "var={var}");
    }

    #[test]
    fn pareto_respects_scale() {
        let mut r = SimRng::new(19);
        for _ in 0..10_000 {
            assert!(r.pareto(2.0, 1.5) >= 2.0);
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SimRng::new(23);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>()); // astronomically unlikely to be identity
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut r = SimRng::new(29);
        let w = [1.0, 0.0, 3.0];
        let mut counts = [0u32; 3];
        for _ in 0..40_000 {
            counts[r.weighted_index(&w).unwrap()] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "ratio={ratio}");
    }

    #[test]
    fn weighted_index_handles_empty_and_zero() {
        let mut r = SimRng::new(31);
        assert_eq!(r.weighted_index(&[]), None);
        assert_eq!(r.weighted_index(&[0.0, 0.0]), None);
        assert_eq!(r.weighted_index(&[f64::NAN, 1.0]), Some(1));
    }
}

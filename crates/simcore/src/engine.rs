//! The simulation engine loop.
//!
//! The engine owns the clock and the event queue; domain logic lives in an
//! [`EventHandler`] implementation which receives each event together with a
//! [`Scheduler`] handle for scheduling follow-up events. The loop runs until
//! a time horizon is reached or the queue drains.

use crate::queue::EventQueue;
use tango_types::SimTime;

/// Handle given to event handlers for scheduling future events.
pub struct Scheduler<'a, E> {
    now: SimTime,
    queue: &'a mut EventQueue<E>,
    coalesced: u64,
}

impl<'a, E> Scheduler<'a, E> {
    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` to fire `delay` after now.
    pub fn schedule_in(&mut self, delay: SimTime, event: E) {
        self.queue.push(self.now + delay, event);
    }

    /// Schedule `event` at an absolute instant. Events scheduled in the
    /// past are clamped to fire "now" (they run after the current event,
    /// preserving causality).
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        self.queue.push(at.max(self.now), event);
    }

    /// Pop the next pending event if it fires at **this** instant and
    /// `pred` accepts it — the same-instant coalescing hook. A handler
    /// that batches events (e.g. all `Dispatch` rounds sharing a tick)
    /// calls this in a loop to absorb the rest of the batch; consumed
    /// events still count toward the engine's processed total.
    pub fn take_coalesced(&mut self, pred: impl FnOnce(&E) -> bool) -> Option<E> {
        let e = self.queue.pop_at_if(self.now, pred)?;
        self.coalesced += 1;
        Some(e)
    }
}

/// Domain logic driven by the engine.
pub trait EventHandler {
    /// The event alphabet of the simulation.
    type Event;

    /// Handle one event at its firing time; schedule follow-ups through
    /// `sched`.
    fn handle(&mut self, event: Self::Event, sched: &mut Scheduler<'_, Self::Event>);
}

/// A discrete-event simulation engine.
pub struct Engine<E> {
    queue: EventQueue<E>,
    now: SimTime,
    processed: u64,
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Engine<E> {
    /// Create an engine at t = 0 with an empty queue.
    pub fn new() -> Self {
        Engine {
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            processed: 0,
        }
    }

    /// Current simulation time (the timestamp of the last handled event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total events handled so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Seed an event before (or during) the run.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        self.queue.push(at.max(self.now), event);
    }

    /// Read access to the pending-event queue, for checkpointing.
    pub fn queue(&self) -> &EventQueue<E> {
        &self.queue
    }

    /// Rebuild an engine mid-run from checkpointed parts. The clock,
    /// processed-event counter and queue (including its sequence counter)
    /// must all come from the same snapshot or determinism is lost.
    pub fn from_parts(now: SimTime, processed: u64, queue: EventQueue<E>) -> Self {
        Engine {
            queue,
            now,
            processed,
        }
    }

    /// Run until the queue drains or the next event would fire *after*
    /// `horizon`. Events exactly at the horizon are processed. Returns the
    /// number of events handled by this call.
    pub fn run_until<H>(&mut self, handler: &mut H, horizon: SimTime) -> u64
    where
        H: EventHandler<Event = E>,
    {
        let mut handled = 0;
        while let Some(at) = self.queue.peek_time() {
            if at > horizon {
                break;
            }
            let (at, event) = self.queue.pop().expect("peeked event must pop");
            debug_assert!(at >= self.now, "event queue must be monotonic");
            self.now = at;
            let mut sched = Scheduler {
                now: self.now,
                queue: &mut self.queue,
                coalesced: 0,
            };
            handler.handle(event, &mut sched);
            let consumed = 1 + sched.coalesced;
            self.processed += consumed;
            handled += consumed;
        }
        // Advance the clock to the horizon so periodic drivers observe
        // consistent window boundaries even when the tail was quiet. A MAX
        // horizon means "run to completion": the clock stays at the last
        // event rather than jumping to infinity.
        if horizon < SimTime::MAX
            && self.now < horizon
            && self.queue.peek_time().is_none_or(|t| t > horizon)
        {
            self.now = horizon;
        }
        handled
    }

    /// Run until the queue is fully drained.
    pub fn run_to_completion<H>(&mut self, handler: &mut H) -> u64
    where
        H: EventHandler<Event = E>,
    {
        self.run_until(handler, SimTime::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A handler that records firing times and chains follow-up events.
    struct Recorder {
        fired: Vec<(SimTime, u32)>,
        chain_until: u32,
    }

    impl EventHandler for Recorder {
        type Event = u32;
        fn handle(&mut self, event: u32, sched: &mut Scheduler<'_, u32>) {
            self.fired.push((sched.now(), event));
            if event < self.chain_until {
                sched.schedule_in(SimTime::from_millis(10), event + 1);
            }
        }
    }

    #[test]
    fn chained_events_advance_the_clock() {
        let mut eng = Engine::new();
        eng.schedule_at(SimTime::from_millis(5), 0);
        let mut h = Recorder {
            fired: vec![],
            chain_until: 3,
        };
        let n = eng.run_to_completion(&mut h);
        assert_eq!(n, 4);
        assert_eq!(
            h.fired,
            vec![
                (SimTime::from_millis(5), 0),
                (SimTime::from_millis(15), 1),
                (SimTime::from_millis(25), 2),
                (SimTime::from_millis(35), 3),
            ]
        );
        assert_eq!(eng.now(), SimTime::from_millis(35));
        assert_eq!(eng.processed(), 4);
    }

    #[test]
    fn horizon_cuts_off_and_clock_lands_on_horizon() {
        let mut eng = Engine::new();
        eng.schedule_at(SimTime::from_millis(5), 0);
        let mut h = Recorder {
            fired: vec![],
            chain_until: 100,
        };
        let n = eng.run_until(&mut h, SimTime::from_millis(26));
        assert_eq!(n, 3); // fires at 5, 15, 25
        assert_eq!(eng.now(), SimTime::from_millis(26));
        assert_eq!(eng.pending(), 1); // the one at 35 still queued

        // resuming continues from where we stopped
        let n2 = eng.run_until(&mut h, SimTime::from_millis(1000));
        assert!(n2 > 0);
        assert!(h.fired.iter().any(|&(t, _)| t == SimTime::from_millis(35)));
    }

    #[test]
    fn event_at_exact_horizon_fires() {
        let mut eng = Engine::new();
        eng.schedule_at(SimTime::from_millis(10), 0);
        let mut h = Recorder {
            fired: vec![],
            chain_until: 0,
        };
        let n = eng.run_until(&mut h, SimTime::from_millis(10));
        assert_eq!(n, 1);
    }

    #[test]
    fn past_events_clamp_to_now() {
        struct PastScheduler {
            seen: Vec<SimTime>,
        }
        impl EventHandler for PastScheduler {
            type Event = bool;
            fn handle(&mut self, first: bool, sched: &mut Scheduler<'_, bool>) {
                self.seen.push(sched.now());
                if first {
                    // try to schedule into the past
                    sched.schedule_at(SimTime::ZERO, false);
                }
            }
        }
        let mut eng = Engine::new();
        eng.schedule_at(SimTime::from_millis(50), true);
        let mut h = PastScheduler { seen: vec![] };
        eng.run_to_completion(&mut h);
        assert_eq!(h.seen.len(), 2);
        assert_eq!(h.seen[1], SimTime::from_millis(50)); // clamped, not time-travel
    }
}

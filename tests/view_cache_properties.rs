//! Property tests for the incremental candidate-view cache.
//!
//! The cache (`crates/core/src/view_cache.rs`) claims that its
//! reservation-patched, epoch-invalidated views are always equal to a
//! from-scratch rebuild from the same inputs. `set_view_verification`
//! turns on an in-cache oracle that performs exactly that comparison on
//! **every** `candidates()` call — so these tests drive whole seeded
//! runs, under random fault churn and across config variants, with the
//! oracle armed. Any divergence (a missed invalidation, a stale
//! reservation patch, a wrong geo set) panics inside the run.

use tango_repro::tango::{BePolicy, EdgeCloudSystem, FaultPlan, LcPolicy, NodeRef, TangoConfig};
use tango_repro::types::{ClusterId, SimTime};

fn base_cfg(seed: u64) -> TangoConfig {
    let mut cfg = TangoConfig::physical_testbed();
    cfg.clusters = 3;
    cfg.topology.clusters = 3;
    cfg.workload.lc_rps = 40.0;
    cfg.workload.be_rps = 6.0;
    cfg.lc_policy = LcPolicy::DssLc;
    cfg.be_policy = BePolicy::LoadGreedy;
    cfg.seed = seed;
    cfg
}

fn run_verified(cfg: TangoConfig, horizon_ms: u64, label: &str) {
    let mut sys = EdgeCloudSystem::new(cfg);
    sys.set_view_verification(true);
    let report = sys.run(SimTime::from_millis(horizon_ms), label);
    assert!(report.lc_arrived > 0, "{label}: run produced no traffic");
}

/// Calm weather across seeds: reservation deltas and sync/reassure
/// invalidations are the only mutation sources.
#[test]
fn cached_views_match_rebuild_on_calm_runs() {
    for seed in [7u64, 99, 20_26] {
        run_verified(base_cfg(seed), 2_000, "view-verify-calm");
    }
}

/// Random mutation sequences: timed crash/recover, link degradation and
/// restore, plus seeded MTTF/MTTR node churn — every fault arm of the
/// invalidation protocol fires while the oracle compares each view
/// against a fresh rebuild.
#[test]
fn cached_views_match_rebuild_under_random_churn() {
    for seed in [3u64, 41] {
        let mut cfg = base_cfg(seed);
        cfg.faults = FaultPlan::new()
            .crash_for(
                SimTime::from_millis(300),
                NodeRef::Worker {
                    cluster: ClusterId(0),
                    index: 1,
                },
                SimTime::from_millis(600),
            )
            .crash_for(
                SimTime::from_millis(500),
                NodeRef::Master(ClusterId(1)),
                SimTime::from_millis(400),
            )
            .degrade_link_for(
                SimTime::from_millis(400),
                ClusterId(0),
                ClusterId(2),
                3.0,
                4.0,
                SimTime::from_millis(700),
            )
            .node_churn(
                SimTime::from_millis(200),
                SimTime::from_millis(150),
                seed ^ 0xC0FFEE,
            );
        run_verified(cfg, 2_000, "view-verify-churn");
    }
}

/// Config variants that exercise the other cache scopes and input
/// branches: local-only dispatch (the BE local filter), re-assurance
/// ablated off (no min-request factors), and the static allocator.
#[test]
fn cached_views_match_rebuild_across_config_variants() {
    let mut local = base_cfg(11);
    local.local_only = true;
    run_verified(local, 1_500, "view-verify-local");

    let mut no_reassure = base_cfg(12);
    no_reassure.reassurance = None;
    run_verified(no_reassure, 1_500, "view-verify-no-reassure");

    let static_alloc = base_cfg(13).as_k8s_native();
    run_verified(static_alloc, 1_500, "view-verify-static");
}

//! Regression tests for the tango-par determinism contract: every
//! parallel code path must produce bit-identical results at any thread
//! count. Each test runs the same seeded workload single-threaded and at
//! four workers and asserts exact equality — floats compared bitwise,
//! not approximately.

use std::sync::Mutex;
use tango::{BePolicy, EdgeCloudSystem, LcPolicy, RunReport, TangoConfig};
use tango_gnn::{Encoder, EncoderKind, FeatureGraph, GnnEncoder};
use tango_nn::Matrix;
use tango_par::Pool;
use tango_sched::{CandidateNode, DssLc, TypeBatch};
use tango_types::{ClusterId, NodeId, RequestId, Resources, ServiceId, SimTime};

/// Serializes tests that flip the process-global thread count.
static GLOBAL_THREADS: Mutex<()> = Mutex::new(());

fn batch(service: u16, n_requests: u64, n_nodes: usize) -> TypeBatch {
    let nodes: Vec<CandidateNode> = (0..n_nodes)
        .map(|i| CandidateNode {
            node: NodeId(i as u32),
            cluster: ClusterId((i / 5) as u32),
            total: Resources::cpu_mem(8_000, 16_384),
            available_lc: Resources::cpu_mem(1_500 + (i as u64 % 5) * 700, 4_096),
            available_be: Resources::cpu_mem(2_000, 4_096),
            min_request: Resources::cpu_mem(500, 256),
            delay: SimTime::from_micros(200 + (i as u64 % 11) * 731),
            link_capacity: 16,
            slack: 1.0,
            alive: true,
        })
        .collect();
    TypeBatch {
        service: ServiceId(service),
        requests: (0..n_requests).map(RequestId).collect(),
        nodes: nodes.into(),
    }
}

#[test]
fn dss_lc_plans_are_identical_across_thread_counts() {
    // A mix of underloaded and overloaded commodities so both the
    // greedy G_k phase and the λ-augmented overflow phase run.
    let batches: Vec<TypeBatch> = vec![
        batch(0, 10, 12),
        batch(1, 400, 12), // overloaded: overflow routing kicks in
        batch(2, 0, 12),
        batch(3, 55, 7),
        batch(4, 120, 20),
    ];
    let plans_1 = DssLc::new(99).plan_many(&batches, &Pool::new(1));
    let plans_4 = DssLc::new(99).plan_many(&batches, &Pool::new(4));
    assert_eq!(plans_1, plans_4);
    // and the plans are non-trivial
    assert!(plans_1
        .iter()
        .any(|p| !p.immediate.is_empty() || !p.queued.is_empty()));
}

#[test]
fn gnn_forward_is_bitwise_identical_across_thread_counts() {
    let _guard = GLOBAL_THREADS.lock().unwrap();
    let saved = tango_par::threads();

    let n = 600;
    let f = 8;
    let data: Vec<f32> = (0..n * f).map(|i| ((i * 53) % 97) as f32 / 97.0).collect();
    let mut graph = FeatureGraph::new(Matrix::from_vec(n, f, data).unwrap());
    for i in 0..n - 1 {
        graph.add_edge(i, i + 1);
        if i % 7 == 0 && i + 9 < n {
            graph.add_edge(i, i + 9);
        }
    }

    for kind in [
        EncoderKind::Sage { p: 3 },
        EncoderKind::Gcn,
        EncoderKind::Gat,
        EncoderKind::Native,
    ] {
        let run = |threads: usize| {
            tango_par::set_threads(threads);
            GnnEncoder::paper_shape(kind, f, 32, 16, 5).forward(&graph)
        };
        let out_1 = run(1);
        let out_4 = run(4);
        assert_eq!(out_1.rows, out_4.rows);
        assert_eq!(out_1.cols, out_4.cols);
        // bitwise equality, not approximate: determinism is exact
        let bits = |m: &Matrix| m.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&out_1), bits(&out_4), "{kind:?} diverged");
    }

    tango_par::set_threads(saved);
}

fn run_system(threads: usize) -> RunReport {
    let mut cfg = TangoConfig::dual_space(3);
    cfg.lc_policy = LcPolicy::DssLc;
    cfg.be_policy = BePolicy::LoadGreedy;
    cfg.workload.lc_rps = 120.0;
    cfg.workload.be_rps = 15.0;
    cfg.parallelism = Some(threads);
    EdgeCloudSystem::new(cfg).run(SimTime::from_secs(5), "determinism")
}

#[test]
fn end_to_end_metrics_are_identical_across_thread_counts() {
    let a = run_system(1);
    let b = run_system(4);
    assert!(a.lc_arrived > 100, "workload too small to be meaningful");
    assert_eq!(a.lc_arrived, b.lc_arrived);
    assert_eq!(a.lc_completed, b.lc_completed);
    assert_eq!(a.be_throughput, b.be_throughput);
    assert_eq!(a.abandoned, b.abandoned);
    assert_eq!(a.dvpa_ops, b.dvpa_ops);
    assert_eq!(a.be_evictions, b.be_evictions);
    // float metrics must also agree exactly — same arithmetic, same order
    assert_eq!(a.qos_satisfaction.to_bits(), b.qos_satisfaction.to_bits());
    assert_eq!(a.mean_utilization.to_bits(), b.mean_utilization.to_bits());
    assert_eq!(a.lc_p95_ms.to_bits(), b.lc_p95_ms.to_bits());
    assert_eq!(a.periods.len(), b.periods.len());
}

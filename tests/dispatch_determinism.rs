//! Determinism tests for the two-phase (plan ∥ / commit sequential)
//! dispatch plane.
//!
//! The dispatcher coalesces every same-instant `Dispatch` event into one
//! batch, forms waves of clusters with pairwise-disjoint candidate
//! footprints, plans each wave's clusters in parallel over frozen views,
//! and commits sequentially in pop order. Its contract is that none of
//! this is observable: results are bit-identical to the sequential
//! dispatcher at every thread count. These tests pin that with golden
//! digests of a *dispatch-heavy* scenario (arrival rate high enough that
//! every round carries work for every cluster) in calm weather and under
//! fault churn, compared across 1/4/8 workers — plus a conflict-path
//! scenario where two clusters plan onto the *same* nearly-full workers
//! every round, so their footprints always collide and the wave loop is
//! forced to serialize them (conflict resolution by cluster ordering,
//! never by requeue).

use tango::{BePolicy, EdgeCloudSystem, FaultPlan, LcPolicy, NodeRef, RunReport, TangoConfig};
use tango_types::{ClusterId, SimTime};

/// Golden digest of `dispatch_heavy_calm()` run for 2 s, captured at
/// `TANGO_THREADS=1` when the two-phase dispatcher landed.
const HEAVY_CALM_DIGEST: u64 = 0xb7f3d61af8535834;

/// Golden digest of `dispatch_heavy_churn()` run for 2 s, captured at
/// `TANGO_THREADS=1` when the two-phase dispatcher landed.
const HEAVY_CHURN_DIGEST: u64 = 0x3d287885ad1e8f2e;

/// Golden digest of `shared_node_conflict()` run for 2 s.
const CONFLICT_DIGEST: u64 = 0xa1f194c5b4869e27;

/// Dispatch-heavy calm weather: every dispatch round at every master has
/// pending work, so batches coalesce across all clusters each tick and
/// the wave loop runs at full width.
fn dispatch_heavy_calm() -> TangoConfig {
    let mut cfg = TangoConfig::physical_testbed();
    cfg.clusters = 6;
    cfg.topology.clusters = 6;
    cfg.workload.lc_rps = 900.0;
    cfg.workload.be_rps = 90.0;
    cfg.lc_policy = LcPolicy::DssLc;
    cfg.be_policy = BePolicy::LoadGreedy;
    cfg.seed = 0xD15;
    cfg
}

/// The same load with a mid-run worker crash and a degraded inter-cluster
/// link: failover re-mastering and link-aware candidate views on the
/// coalesced path.
fn dispatch_heavy_churn() -> TangoConfig {
    let mut cfg = dispatch_heavy_calm();
    cfg.faults = FaultPlan::new()
        .crash_for(
            SimTime::from_millis(400),
            NodeRef::Worker {
                cluster: ClusterId(1),
                index: 0,
            },
            SimTime::from_millis(700),
        )
        .degrade_link_for(
            SimTime::from_millis(500),
            ClusterId(0),
            ClusterId(2),
            2.5,
            3.0,
            SimTime::from_millis(900),
        );
    cfg
}

/// Conflict path: two clusters, one worker each, in the same metro
/// region — every cluster's geo candidate set contains *both* workers,
/// and the load keeps them nearly full. The clusters' footprints
/// therefore overlap on every round: they can never share a wave, the
/// wave loop must cut between them, and cluster 1's plan must observe
/// cluster 0's freshly committed reservations.
fn shared_node_conflict() -> TangoConfig {
    let mut cfg = TangoConfig::physical_testbed();
    cfg.clusters = 2;
    cfg.topology.clusters = 2;
    cfg.workers_per_cluster = (1, 1);
    cfg.workload.lc_rps = 300.0;
    cfg.workload.be_rps = 20.0;
    cfg.lc_policy = LcPolicy::DssLc;
    cfg.be_policy = BePolicy::LoadGreedy;
    cfg.seed = 0xC0F;
    cfg
}

fn run_with(mut cfg: TangoConfig, threads: usize) -> RunReport {
    cfg.parallelism = Some(threads);
    EdgeCloudSystem::new(cfg).run(SimTime::from_secs(2), "dispatch-det")
}

#[test]
fn heavy_calm_digest_is_pinned_and_thread_invariant() {
    let one = run_with(dispatch_heavy_calm(), 1);
    assert!(one.lc_arrived > 1_000, "scenario is not dispatch-heavy");
    assert_eq!(
        one.digest(),
        HEAVY_CALM_DIGEST,
        "dispatch-heavy calm digest drifted (report: {})",
        one.summary()
    );
    for threads in [4usize, 8] {
        let t = run_with(dispatch_heavy_calm(), threads);
        assert_eq!(
            t.digest(),
            one.digest(),
            "digest diverged at {threads} workers"
        );
    }
}

#[test]
fn heavy_churn_digest_is_pinned_and_thread_invariant() {
    let one = run_with(dispatch_heavy_churn(), 1);
    assert!(one.lc_arrived > 1_000, "scenario is not dispatch-heavy");
    assert_eq!(
        one.digest(),
        HEAVY_CHURN_DIGEST,
        "dispatch-heavy churn digest drifted (report: {})",
        one.summary()
    );
    for threads in [4usize, 8] {
        let t = run_with(dispatch_heavy_churn(), threads);
        assert_eq!(
            t.digest(),
            one.digest(),
            "digest diverged at {threads} workers"
        );
    }
}

#[test]
fn shared_node_conflict_serializes_identically() {
    let one = run_with(shared_node_conflict(), 1);
    // The scenario must really contend: far more arrivals than two
    // nearly-full workers can absorb, yet some work completes.
    assert!(one.lc_arrived > 400, "not enough load for contention");
    assert!(one.lc_completed > 0, "nothing completed");
    assert!(
        one.lc_completed < one.lc_arrived,
        "workers absorbed everything — nodes are not nearly full"
    );
    assert_eq!(
        one.digest(),
        CONFLICT_DIGEST,
        "conflict-path digest drifted (report: {})",
        one.summary()
    );
    for threads in [4usize, 8] {
        let t = run_with(shared_node_conflict(), threads);
        assert_eq!(
            t.digest(),
            one.digest(),
            "conflict-path digest diverged at {threads} workers"
        );
    }
}

//! Golden refactor-equivalence tests.
//!
//! The staged-runtime decomposition of `EdgeCloudSystem` (lifecycle /
//! dispatch / sync / fault stages over a `SystemCtx` borrow-view) claims
//! to be *behavior-preserving*: same seed in, bit-identical `RunReport`
//! out. These tests pin the digest of two seeded end-to-end runs — one
//! calm-weather, one under fault churn — to constants captured from the
//! pre-refactor monolith. Any drift in event ordering, RNG consumption,
//! candidate construction or accounting changes the digest and fails the
//! test exactly.
//!
//! CI runs the suite at `TANGO_THREADS=1` and `=4`, so the constants
//! also pin thread-count invariance; the explicit 1-vs-4 comparison
//! below does the same in-process for hosts without the env var set.

use tango::{BePolicy, EdgeCloudSystem, FaultPlan, LcPolicy, NodeRef, RunReport, TangoConfig};
use tango_types::{ClusterId, SimTime};

/// Digest of `calm_cfg()` run for 5 s, captured from the pre-refactor
/// `system.rs` monolith (commit d599896) and unchanged since.
const CALM_DIGEST: u64 = 0x6338323c1d6cf929;

/// Digest of `churn_cfg()` run for 5 s, captured from the pre-refactor
/// `system.rs` monolith (commit d599896) and unchanged since.
const CHURN_DIGEST: u64 = 0xee21677c6a08d16d;

fn calm_cfg() -> TangoConfig {
    let mut cfg = TangoConfig::physical_testbed();
    cfg.clusters = 2;
    cfg.topology.clusters = 2;
    cfg.workload.lc_rps = 30.0;
    cfg.workload.be_rps = 4.0;
    cfg.lc_policy = LcPolicy::DssLc;
    cfg.be_policy = BePolicy::LoadGreedy;
    cfg
}

fn churn_cfg() -> TangoConfig {
    let mut cfg = calm_cfg();
    cfg.faults = FaultPlan::new()
        .crash_for(
            SimTime::from_millis(900),
            NodeRef::Worker {
                cluster: ClusterId(0),
                index: 1,
            },
            SimTime::from_millis(1_400),
        )
        .degrade_link_for(
            SimTime::from_millis(1_200),
            ClusterId(0),
            ClusterId(1),
            3.0,
            4.0,
            SimTime::from_millis(1_400),
        );
    cfg
}

fn run(cfg: TangoConfig) -> RunReport {
    EdgeCloudSystem::new(cfg).run(SimTime::from_secs(5), "golden")
}

#[test]
fn calm_run_matches_pre_refactor_digest() {
    let report = run(calm_cfg());
    assert_eq!(
        report.digest(),
        CALM_DIGEST,
        "calm-weather RunReport drifted from the pre-refactor golden \
         (report: {})",
        report.summary()
    );
}

#[test]
fn churn_run_matches_pre_refactor_digest() {
    let report = run(churn_cfg());
    assert_eq!(
        report.digest(),
        CHURN_DIGEST,
        "fault-churn RunReport drifted from the pre-refactor golden \
         (report: {})",
        report.summary()
    );
}

#[test]
fn digests_are_thread_count_invariant() {
    // `TANGO_THREADS` (when set, e.g. in CI) overrides the config field,
    // making the two runs trivially equal — the pinned constants above
    // carry the check there. On unset hosts this exercises 1 vs 4
    // workers in-process.
    for cfg_fn in [calm_cfg, churn_cfg] {
        let mut one = cfg_fn();
        one.parallelism = Some(1);
        let mut four = cfg_fn();
        four.parallelism = Some(4);
        assert_eq!(run(one).digest(), run(four).digest());
    }
}

#[test]
fn runs_are_deterministic_per_seed() {
    let a = run(calm_cfg());
    let b = run(calm_cfg());
    assert_eq!(a.digest(), b.digest());
    assert_eq!(a.lc_arrived, b.lc_arrived);
    assert_eq!(a.lc_completed, b.lc_completed);
    assert_eq!(a.be_throughput, b.be_throughput);
    assert_eq!(a.abandoned, b.abandoned);
}

#[test]
fn digest_is_sensitive_to_every_top_level_field() {
    let base = run(calm_cfg());
    let d0 = base.digest();
    let mut r = base.clone();
    r.be_throughput ^= 1;
    assert_ne!(r.digest(), d0);
    let mut r = base.clone();
    r.qos_satisfaction += 1e-12;
    assert_ne!(r.digest(), d0);
    let mut r = base.clone();
    r.faults.node_crashes += 1;
    assert_ne!(r.digest(), d0);
    let mut r = base;
    if let Some(p) = r.periods.first_mut() {
        p.lc_arrived ^= 1;
        assert_ne!(r.digest(), d0);
    }
}

//! Integration across substrate crates: DSS-LC plans executed against
//! real kube nodes under the HRM allocator, exercising the full
//! plan → admit → execute → complete → reclaim loop without the system
//! runtime in between.

use std::collections::HashMap;
use tango_repro::hrm::HrmAllocator;
use tango_repro::kube::Node;
use tango_repro::sched::{CandidateNode, DssLc, LcScheduler, TypeBatch};
use tango_repro::types::{
    ClusterId, NodeId, Request, RequestId, Resources, ServiceClass, ServiceId, ServiceSpec, SimTime,
};

fn lc_spec() -> ServiceSpec {
    ServiceSpec {
        id: ServiceId(0),
        name: "lc".into(),
        class: ServiceClass::Lc,
        min_request: Resources::cpu_mem(500, 256),
        work_milli_ms: 50_000, // 100 ms at min request
        qos_target: SimTime::from_millis(300),
        payload_kib: 64,
    }
}

fn make_nodes(n: usize, cpu: u64) -> Vec<Node> {
    (0..n)
        .map(|i| {
            let mut node = Node::new(
                NodeId(i as u32),
                ClusterId(0),
                false,
                Resources::new(cpu, 8_192, 1_000, 50_000),
            );
            node.deploy_service(&lc_spec(), lc_spec().min_request, SimTime::ZERO)
                .unwrap();
            node
        })
        .collect()
}

fn candidates(nodes: &[Node]) -> Vec<CandidateNode> {
    nodes
        .iter()
        .map(|n| {
            let (lc, be) = n.demand_usage();
            let avail = n.capacity().saturating_sub(&lc).saturating_sub(&be);
            CandidateNode {
                node: n.id,
                cluster: n.cluster,
                total: n.capacity(),
                available_lc: avail + be,
                available_be: avail,
                min_request: lc_spec().min_request,
                delay: SimTime::from_millis(1 + n.id.raw() as u64),
                link_capacity: 100,
                slack: 1.0,
                alive: true,
            }
        })
        .collect()
}

/// Plan with DSS-LC, admit with HRM, run to completion, verify every
/// placed request finished within capacity.
#[test]
fn dss_lc_plan_executes_on_real_nodes() {
    let mut nodes = make_nodes(3, 4_000);
    let mut sched = DssLc::new(9);
    let n_requests = 20u64; // 3 nodes × 8 slots = 24 slots > 20
    let batch = TypeBatch {
        service: ServiceId(0),
        requests: (0..n_requests).map(RequestId).collect(),
        nodes: candidates(&nodes).into(),
    };
    let placements = sched.assign(&batch);
    assert_eq!(placements.len(), n_requests as usize);

    let floors: HashMap<ServiceId, Resources> = [(ServiceId(0), lc_spec().min_request)]
        .into_iter()
        .collect();
    let mut alloc = HrmAllocator::new(floors);
    let t0 = SimTime::from_millis(5);
    for (rid, node_id) in &placements {
        let req = Request::new(
            *rid,
            ServiceId(0),
            ServiceClass::Lc,
            ClusterId(0),
            SimTime::ZERO,
            lc_spec().min_request,
        );
        let node = &mut nodes[node_id.index()];
        alloc
            .try_admit(node, &req, lc_spec().work_milli_ms, t0)
            .unwrap_or_else(|e| panic!("admit {rid} on {node_id} failed: {e}"));
    }
    // all requests run at their demand (capacity suffices) -> done at +100ms
    let t_done = SimTime::from_millis(105);
    let mut completed = 0;
    for node in &mut nodes {
        node.advance(t_done);
        completed += node.take_completions().len();
    }
    assert_eq!(completed, n_requests as usize);
    // resources fully reclaimed
    for node in &mut nodes {
        alloc.rebalance(node, t_done);
        let (lc, be) = node.demand_usage();
        assert!(lc.is_zero() && be.is_zero());
    }
}

/// Overload case: DSS-LC queues the overflow at targets; the targets'
/// processor sharing stretches latency but nothing is lost.
#[test]
fn dss_lc_overload_spreads_and_everything_completes() {
    let mut nodes = make_nodes(2, 2_000); // 4 slots per node by CPU
    let mut sched = DssLc::new(11);
    let n_requests = 20u64; // way over the 8 immediate slots
    let batch = TypeBatch {
        service: ServiceId(0),
        requests: (0..n_requests).map(RequestId).collect(),
        nodes: candidates(&nodes).into(),
    };
    let plan = sched.plan(&batch);
    assert!(plan.unrouted.is_empty(), "unrouted: {:?}", plan.unrouted);
    assert!(!plan.queued.is_empty());

    let floors: HashMap<ServiceId, Resources> = [(ServiceId(0), lc_spec().min_request)]
        .into_iter()
        .collect();
    let mut alloc = HrmAllocator::new(floors);

    // The regulations never oversubscribe LC CPU: each 2000m node takes at
    // most 4 concurrent 500m requests; the rest wait (the system layer's
    // per-node wait queues). Emulate the drain loop here.
    let mut waiting: Vec<(RequestId, usize)> = plan.all().map(|(r, n)| (r, n.index())).collect();
    let mut done = 0usize;
    let mut now = SimTime::ZERO;
    let mut rounds = 0;
    while done < n_requests as usize {
        rounds += 1;
        assert!(rounds < 50, "did not converge: {done} done");
        waiting.retain(|&(rid, ni)| {
            let req = Request::new(
                rid,
                ServiceId(0),
                ServiceClass::Lc,
                ClusterId(0),
                SimTime::ZERO,
                lc_spec().min_request,
            );
            alloc
                .try_admit(&mut nodes[ni], &req, lc_spec().work_milli_ms, now)
                .is_err()
        });
        now += SimTime::from_millis(110);
        for node in nodes.iter_mut() {
            node.advance(now);
            done += node.take_completions().len();
            alloc.rebalance(node, now);
        }
    }
    assert_eq!(done, n_requests as usize);
    assert!(waiting.is_empty());
}

/// LC preemption against BE across the kube/hrm boundary: BE saturates a
/// node, an LC burst arrives, QoS of LC is preserved by throttling BE.
#[test]
fn lc_burst_preempts_saturating_be() {
    let be_spec = ServiceSpec {
        id: ServiceId(1),
        name: "be".into(),
        class: ServiceClass::Be,
        min_request: Resources::cpu_mem(1_000, 512),
        work_milli_ms: 4_000_000, // 4s at 1000m
        qos_target: SimTime::MAX,
        payload_kib: 512,
    };
    let mut node = Node::new(
        NodeId(0),
        ClusterId(0),
        false,
        Resources::new(4_000, 8_192, 1_000, 50_000),
    );
    node.deploy_service(&lc_spec(), lc_spec().min_request, SimTime::ZERO)
        .unwrap();
    node.deploy_service(&be_spec, be_spec.min_request, SimTime::ZERO)
        .unwrap();
    let floors: HashMap<ServiceId, Resources> = [
        (ServiceId(0), lc_spec().min_request),
        (ServiceId(1), be_spec.min_request),
    ]
    .into_iter()
    .collect();
    let mut alloc = HrmAllocator::new(floors);

    // saturate with 4 BE requests (4000m demand)
    for i in 0..4 {
        let req = Request::new(
            RequestId(100 + i),
            be_spec.id,
            ServiceClass::Be,
            ClusterId(0),
            SimTime::ZERO,
            be_spec.min_request,
        );
        alloc
            .try_admit(&mut node, &req, be_spec.work_milli_ms, SimTime::ZERO)
            .unwrap();
    }
    // LC burst of 6 (3000m)
    for i in 0..6 {
        let req = Request::new(
            RequestId(i),
            ServiceId(0),
            ServiceClass::Lc,
            ClusterId(0),
            SimTime::ZERO,
            lc_spec().min_request,
        );
        alloc
            .try_admit(&mut node, &req, lc_spec().work_milli_ms, SimTime::ZERO)
            .unwrap();
    }
    // LC runs at full demand: all 6 complete by ~100 ms
    node.advance(SimTime::from_millis(110));
    let done = node.take_completions();
    let lc_done = done.iter().filter(|c| c.class.is_lc()).count();
    assert_eq!(lc_done, 6, "LC QoS preserved under BE saturation");
    // BE is throttled but alive
    let be_ctr = node.container_for(be_spec.id).unwrap();
    let be_cpu = node.effective_cpu(be_ctr);
    assert!((10..4_000).contains(&be_cpu), "BE throttled to {be_cpu}");
}

//! Control-plane integration tests: the state mirror and a NoopProxy are
//! pure observers (pinned goldens survive attachment at every thread
//! count), mirror frame streams reconstruct the latest snapshot, an
//! external pin policy really changes placement with deterministic
//! deadline-miss fallback, and keep-alive detection trips within the
//! configured miss bound.

use tango_repro::ctrl::{
    apply_frame, decode_frame, DecisionReply, KeepAliveConfig, NoopProxy, PolicyFn,
};
use tango_repro::metrics::{TraceEvent, TraceRecorder};
use tango_repro::tango::{
    BePolicy, EdgeCloudSystem, FaultPlan, LcPolicy, NodeRef, RunReport, TangoConfig,
};
use tango_repro::types::{ClusterId, NodeId, SimTime};

/// Same pinned goldens as `refactor_equivalence.rs` /
/// `paper_scale.rs` — attaching a mirror and a declining proxy must not
/// move them by a single bit.
const CALM_DIGEST: u64 = 0x6338323c1d6cf929;
const CHURN_DIGEST: u64 = 0xee21677c6a08d16d;
const PAPER_104_DIGEST: u64 = 0xeb7c094ffd83ce86;

fn calm_cfg() -> TangoConfig {
    let mut cfg = TangoConfig::physical_testbed();
    cfg.clusters = 2;
    cfg.topology.clusters = 2;
    cfg.workload.lc_rps = 30.0;
    cfg.workload.be_rps = 4.0;
    cfg.lc_policy = LcPolicy::DssLc;
    cfg.be_policy = BePolicy::LoadGreedy;
    cfg
}

fn churn_cfg() -> TangoConfig {
    let mut cfg = calm_cfg();
    cfg.faults = FaultPlan::new()
        .crash_for(
            SimTime::from_millis(900),
            NodeRef::Worker {
                cluster: ClusterId(0),
                index: 1,
            },
            SimTime::from_millis(1_400),
        )
        .degrade_link_for(
            SimTime::from_millis(1_200),
            ClusterId(0),
            ClusterId(1),
            3.0,
            4.0,
            SimTime::from_millis(1_400),
        );
    cfg
}

/// Attach a mirror plus a declining proxy on every cluster, then run.
fn run_observed(cfg: TangoConfig, horizon: SimTime) -> RunReport {
    let mut sys = EdgeCloudSystem::new(cfg);
    let _mirror = sys.attach_mirror();
    let stats: Vec<_> = (0..sys.cluster_count())
        .map(|ci| {
            sys.attach_lc_proxy(
                ClusterId(ci as u32),
                Box::new(NoopProxy),
                SimTime::from_millis(10),
            )
        })
        .collect();
    let report = sys.run(horizon, "golden");
    for s in &stats {
        let (accepted, _declined, fallbacks) = s.totals();
        assert_eq!(accepted, 0, "NoopProxy never places");
        assert_eq!(fallbacks, 0, "declines are not fallbacks");
    }
    report
}

#[test]
fn mirror_and_noop_proxy_leave_goldens_untouched() {
    for threads in [1usize, 4] {
        for (cfg_fn, golden) in [
            (calm_cfg as fn() -> TangoConfig, CALM_DIGEST),
            (churn_cfg as fn() -> TangoConfig, CHURN_DIGEST),
        ] {
            let mut cfg = cfg_fn();
            cfg.parallelism = Some(threads);
            let report = run_observed(cfg, SimTime::from_secs(5));
            assert_eq!(
                report.digest(),
                golden,
                "observer attachments moved a golden at {threads} threads \
                 (report: {})",
                report.summary()
            );
        }
    }
}

#[test]
fn mirror_and_noop_proxy_leave_104_cluster_golden_untouched() {
    for threads in [1usize, 4] {
        let mut cfg = TangoConfig::dual_space(104);
        cfg.be_policy = BePolicy::LoadGreedy;
        cfg.parallelism = Some(threads);
        let report = run_observed(cfg, SimTime::from_millis(300));
        assert_eq!(
            report.digest(),
            PAPER_104_DIGEST,
            "observer attachments moved the 104-cluster golden at {threads} threads"
        );
    }
}

#[test]
fn mirror_frame_stream_reconstructs_latest_snapshot() {
    let mut sys = EdgeCloudSystem::new(churn_cfg());
    let mirror = sys.attach_mirror();
    mirror.retain_frames(true);
    sys.run(SimTime::from_secs(5), "mirror");

    let frames = mirror.take_retained();
    assert!(!frames.is_empty(), "a 5 s run publishes frames");
    // An external consumer replays the wire stream from nothing and must
    // land on exactly the publisher's latest snapshot.
    let mut view = None;
    for bytes in &frames {
        let frame = decode_frame(bytes).expect("published frames decode");
        apply_frame(&mut view, &frame).expect("published frames apply in order");
    }
    let reconstructed = view.expect("stream ends with state");
    let latest = mirror.latest().expect("publisher kept a snapshot");
    assert_eq!(reconstructed, latest);

    let stats = mirror.stats();
    assert!(stats.full_frames >= 1, "first publish is a full frame");
    assert!(
        stats.delta_frames >= 1,
        "steady-state publishes deltas, not fulls (stats: {stats:?})"
    );
    assert!(
        stats.full_frames + stats.delta_frames <= frames.len() as u64,
        "retained stream covers every published frame"
    );
    // The crash/recover churn plus steady traffic must not degenerate
    // into re-sending the whole cluster every tick.
    assert!(
        stats.rows_published < stats.delta_frames * latest.nodes.len() as u64,
        "deltas carry changed rows only"
    );
}

#[test]
fn external_pin_policy_changes_placement_and_is_accepted() {
    let pinned_node = NodeId(2); // a cluster-0 worker in the 2-cluster layout
    let baseline = EdgeCloudSystem::new(calm_cfg()).run(SimTime::from_secs(3), "base");

    let mut sys = EdgeCloudSystem::new(calm_cfg());
    let stats = sys.attach_lc_proxy(
        ClusterId(0),
        Box::new(PolicyFn::new(move |req| {
            let placements = req
                .batches
                .iter()
                .map(|b| {
                    let ok = b
                        .candidates
                        .iter()
                        .any(|c| c.node == pinned_node && c.alive);
                    b.requests
                        .iter()
                        .filter(|_| ok)
                        .map(|&rid| (rid, pinned_node))
                        .collect()
                })
                .collect();
            Some(DecisionReply {
                round: req.round,
                compute_latency: SimTime::from_millis(1),
                placements,
            })
        })),
        SimTime::from_millis(10),
    );
    let recorder = TraceRecorder::new(1 << 16);
    sys.set_trace(Box::new(recorder.clone()));
    let report = sys.run(SimTime::from_secs(3), "pinned");

    let (accepted, _, fallbacks) = stats.totals();
    assert!(accepted > 0, "the pin policy placed rounds");
    assert_eq!(
        fallbacks, 0,
        "well-formed in-deadline replies never fall back"
    );
    assert_ne!(
        report.digest(),
        baseline.digest(),
        "an external policy that pins placement must change behavior"
    );
    // Every cluster-0 LC dispatch decision in the trace goes to the pin.
    let mut pinned = 0u64;
    for (_, ev) in recorder.events() {
        if let TraceEvent::DispatchDecision { target, lane, .. } = ev {
            if lane == tango_repro::metrics::TraceLane::Lc && target == pinned_node {
                pinned += 1;
            }
        }
    }
    assert!(pinned > 0, "pinned dispatches visible in the trace");
}

#[test]
fn deadline_miss_falls_back_to_local_policy_bit_identically() {
    let baseline = EdgeCloudSystem::new(calm_cfg()).run(SimTime::from_secs(3), "base");

    // The policy answers every round, correctly — but claims a sim-time
    // compute latency over the deadline. Every round must fall back to
    // the wrapped local DSS-LC and reproduce the unproxied run exactly.
    let mut sys = EdgeCloudSystem::new(calm_cfg());
    let stats = sys.attach_lc_proxy(
        ClusterId(0),
        Box::new(PolicyFn::new(|req| {
            Some(DecisionReply {
                round: req.round,
                compute_latency: SimTime::from_millis(50),
                placements: req.batches.iter().map(|_| Vec::new()).collect(),
            })
        })),
        SimTime::from_millis(10),
    );
    let report = sys.run(SimTime::from_secs(3), "late");

    let (accepted, _, fallbacks) = stats.totals();
    assert_eq!(accepted, 0);
    assert!(fallbacks > 0, "late replies count as fallbacks");
    assert_eq!(
        report.digest(),
        baseline.digest(),
        "deadline-miss fallback must be bit-identical to the local policy"
    );
    // Fallbacks surface in the per-period series.
    let total: u64 = report.periods.iter().map(|p| p.proxy_fallbacks).sum();
    assert_eq!(total, fallbacks, "period counters account every fallback");
}

#[test]
fn keepalive_detection_trips_within_the_miss_bound() {
    let mut cfg = churn_cfg();
    cfg.detection = Some(KeepAliveConfig {
        miss_threshold: 3,
        suspicion_decay: 0.5,
    });
    let bound = SimTime::from_millis(100 * 3); // miss_threshold × sync_interval

    let mut sys = EdgeCloudSystem::new(cfg);
    let recorder = TraceRecorder::new(1 << 16);
    sys.set_trace(Box::new(recorder.clone()));
    let report = sys.run(SimTime::from_secs(5), "detected");

    let events = recorder.events();
    let crash_at = events
        .iter()
        .find_map(|(at, e)| match e {
            TraceEvent::Fault { kind: "crash", .. } => Some(*at),
            _ => None,
        })
        .expect("the plan crashes a worker");
    let detected_at = events
        .iter()
        .find_map(|(at, e)| match e {
            TraceEvent::Fault {
                kind: "detected", ..
            } => Some(*at),
            _ => None,
        })
        .expect("the keep-alive detector trips");
    assert!(detected_at > crash_at);
    let lag = detected_at.saturating_since(crash_at);
    assert!(
        lag <= bound,
        "detection lag {lag:?} exceeds miss_threshold × sync_interval {bound:?}"
    );
    // The lag is reported in the per-period series (mean ms per period).
    let reported: f64 = report.periods.iter().map(|p| p.detection_lag_ms).sum();
    assert!(reported > 0.0, "detection lag surfaces in the report");
    assert!(reported <= bound.as_millis_f64() + 1e-9);
    // Failover still runs: the interrupted work was rescheduled after
    // the trip and the run conserves every request.
    assert_eq!(report.faults.node_crashes, 1);
    assert_eq!(report.faults.node_recoveries, 1);
}

#[test]
fn recovery_before_detection_never_surfaces_the_crash() {
    let mut cfg = calm_cfg();
    // Down for one sync tick — under a 3-miss threshold the detector
    // never trips, so the control plane never learns of the blip.
    cfg.faults = FaultPlan::new().crash_for(
        SimTime::from_millis(900),
        NodeRef::Worker {
            cluster: ClusterId(0),
            index: 1,
        },
        SimTime::from_millis(150),
    );
    cfg.detection = Some(KeepAliveConfig {
        miss_threshold: 3,
        suspicion_decay: 0.5,
    });

    let mut sys = EdgeCloudSystem::new(cfg);
    let recorder = TraceRecorder::new(1 << 16);
    sys.set_trace(Box::new(recorder.clone()));
    let report = sys.run(SimTime::from_secs(3), "blip");

    assert!(
        !recorder.events().iter().any(|(_, e)| matches!(
            e,
            TraceEvent::Fault {
                kind: "detected",
                ..
            }
        )),
        "a sub-threshold blip must stay undetected"
    );
    assert_eq!(report.faults.node_crashes, 1);
    assert_eq!(report.faults.node_recoveries, 1);
    let reported: f64 = report.periods.iter().map(|p| p.detection_lag_ms).sum();
    assert_eq!(reported, 0.0, "no detection, no lag");
}

#[test]
fn detection_runs_are_deterministic_and_thread_invariant() {
    let mk = || {
        let mut cfg = churn_cfg();
        cfg.detection = Some(KeepAliveConfig::default());
        cfg
    };
    let mut one = mk();
    one.parallelism = Some(1);
    let mut four = mk();
    four.parallelism = Some(4);
    let d1 = EdgeCloudSystem::new(one)
        .run(SimTime::from_secs(5), "det")
        .digest();
    let d4 = EdgeCloudSystem::new(four)
        .run(SimTime::from_secs(5), "det")
        .digest();
    assert_eq!(d1, d4, "detection-driven faults must stay thread-invariant");
}

//! Property tests for the flow stack, expressed as deterministic seeded
//! sweeps (see `tests/properties.rs` for why `proptest` itself is not
//! available in this build environment).
//!
//! Two oracles check the min-cost max-flow solver:
//!
//! 1. **Brute force** — on graphs small enough (≤ 5 nodes, tiny integer
//!    capacities) that every feasible integer edge-flow assignment can be
//!    enumerated outright, the solver must match the exhaustive optimum
//!    in both flow value and cost.
//! 2. **Closed form** — on the bipartite dispatch graphs DSS-LC builds,
//!    the greedy delay-order routing is provably optimal, so
//!    `DssLc::route` and `DssLc::route_mcmf` must agree on flow and cost
//!    for arbitrary batches.

use tango_repro::flow::{FlowGraph, MinCostMaxFlow};
use tango_repro::sched::{CandidateNode, DssLc, TypeBatch};
use tango_repro::simcore::SimRng;
use tango_repro::types::{ClusterId, NodeId, RequestId, Resources, ServiceId, SimTime};

/// A tiny random DAG flow instance (edges only go low → high node index,
/// so no cycles and therefore no negative cost cycles even with negative
/// edge costs, which deliberately exercise the Bellman–Ford bootstrap).
struct TinyInstance {
    n: usize,
    /// (u, v, cap, cost)
    edges: Vec<(usize, usize, i64, i64)>,
}

fn tiny_instance(rng: &mut SimRng) -> TinyInstance {
    let n = 2 + rng.next_below(4) as usize; // 2..=5 nodes
    let m = 1 + rng.next_below(7) as usize; // 1..=7 edges
    let mut edges = Vec::with_capacity(m);
    for _ in 0..m {
        let u = rng.next_below(n as u64 - 1) as usize;
        let v = u + 1 + rng.next_below((n - u - 1) as u64) as usize;
        let cap = rng.next_below(4) as i64; // 0..=3
        let cost = rng.next_below(15) as i64 - 5; // -5..=9
        edges.push((u, v, cap, cost));
    }
    TinyInstance { n, edges }
}

/// Exhaustively enumerate every integer flow assignment (each edge flow
/// in `0..=cap`), keep the ones satisfying conservation at interior
/// nodes, and return (max flow value, min cost at that value).
fn brute_force_mcmf(inst: &TinyInstance, source: usize, sink: usize) -> (i64, i64) {
    let m = inst.edges.len();
    let mut best_flow = 0i64;
    let mut best_cost = 0i64;
    let mut assign = vec![0i64; m];
    loop {
        // check conservation and tally
        let mut net = vec![0i64; inst.n];
        let mut cost = 0i64;
        for (f, &(u, v, _, c)) in assign.iter().zip(&inst.edges) {
            net[u] -= f;
            net[v] += f;
            cost += f * c;
        }
        let conserved = (0..inst.n)
            .filter(|&v| v != source && v != sink)
            .all(|v| net[v] == 0);
        if conserved {
            let value = net[sink];
            if value > best_flow || (value == best_flow && cost < best_cost) {
                best_flow = value;
                best_cost = cost;
            }
        }
        // odometer increment over 0..=cap per edge
        let mut i = 0;
        loop {
            if i == m {
                return (best_flow, best_cost);
            }
            if assign[i] < inst.edges[i].2 {
                assign[i] += 1;
                break;
            }
            assign[i] = 0;
            i += 1;
        }
    }
}

#[test]
fn mcmf_matches_brute_force_on_tiny_graphs() {
    const CASES: u64 = 300;
    for seed in 0..CASES {
        let mut rng = SimRng::new(0xF10_0000 + seed);
        let inst = tiny_instance(&mut rng);
        let source = 0;
        let sink = inst.n - 1;
        let (want_flow, want_cost) = brute_force_mcmf(&inst, source, sink);

        let mut g = FlowGraph::new(inst.n);
        for &(u, v, cap, cost) in &inst.edges {
            g.add_edge(u, v, cap, cost);
        }
        let got = MinCostMaxFlow::new(&mut g).solve(source, sink, i64::MAX);
        assert_eq!(
            (got.flow, got.cost),
            (want_flow, want_cost),
            "seed {seed}: solver {got:?} vs brute force ({want_flow}, {want_cost}) on {:?}",
            inst.edges
        );
    }
}

fn arb_batch(rng: &mut SimRng) -> TypeBatch {
    let n = 1 + rng.next_below(14) as usize;
    let nodes: Vec<CandidateNode> = (0..n)
        .map(|i| {
            let cap = rng.next_below(9);
            CandidateNode {
                node: NodeId(i as u32),
                cluster: ClusterId((i / 4) as u32),
                total: Resources::cpu_mem(8_000, 16_384),
                available_lc: Resources::cpu_mem(cap * 500, cap * 256),
                available_be: Resources::cpu_mem(cap * 500, cap * 256),
                min_request: Resources::cpu_mem(500, 256),
                delay: SimTime::from_millis(1 + rng.next_below(60)),
                link_capacity: 1 + rng.next_below(10) as u32,
                slack: 1.0,
                alive: true,
            }
        })
        .collect();
    TypeBatch {
        service: ServiceId(0),
        requests: (0..rng.next_below(40)).map(RequestId).collect(),
        nodes: nodes.into(),
    }
}

/// The greedy closed form, the general MCMF solver, and the pooled MCMF
/// path agree on total flow and total cost over random batches.
#[test]
fn route_matches_route_mcmf_on_random_batches() {
    const CASES: u64 = 200;
    let mut pooled = DssLc::new(0);
    for seed in 0..CASES {
        let mut rng = SimRng::new(0x20_77_00 + seed);
        let batch = arb_batch(&mut rng);
        let caps: Vec<u64> = batch.nodes.iter().map(|c| c.capacity_now(true)).collect();
        let demand = rng.next_below(50);

        let fast = DssLc::route(&batch, &caps, demand);
        let slow = DssLc::route_mcmf(&batch, &caps, demand);
        let via_pool = pooled.route_mcmf_pooled(&batch, &caps, demand);

        let total = |v: &[(usize, u64)]| -> u64 { v.iter().map(|&(_, k)| k).sum() };
        let cost = |v: &[(usize, u64)]| -> u64 {
            v.iter()
                .map(|&(i, k)| k * batch.nodes[i].delay.as_micros())
                .sum()
        };
        assert_eq!(total(&fast), total(&slow), "flow mismatch at seed {seed}");
        assert_eq!(cost(&fast), cost(&slow), "cost mismatch at seed {seed}");
        assert_eq!(slow, via_pool, "pooled MCMF diverged at seed {seed}");

        // neither route may exceed any node's effective capacity
        for &(i, k) in &fast {
            let limit = caps[i].min(batch.nodes[i].link_capacity as u64);
            assert!(k <= limit, "greedy overfills node {i} at seed {seed}");
        }
    }
}

/// Planning is a pure function of (seed, batch): two schedulers with the
/// same seed produce identical plans, placement by placement.
#[test]
fn lc_plan_is_deterministic_per_seed() {
    for seed in 0..24u64 {
        let mut rng = SimRng::new(0xDE7 + seed);
        let batch = arb_batch(&mut rng);
        let p1 = DssLc::new(seed).plan(&batch);
        let p2 = DssLc::new(seed).plan(&batch);
        assert_eq!(p1.immediate, p2.immediate, "seed {seed}");
        assert_eq!(p1.queued, p2.queued, "seed {seed}");
        assert_eq!(p1.unrouted, p2.unrouted, "seed {seed}");
    }
}

//! Property tests over the schedulers and the execution model.
//!
//! Expressed as deterministic seeded sweeps (see `tests/properties.rs`
//! for why `proptest` itself is not available in this build environment).

use tango_repro::kube::Node;
use tango_repro::metrics::P2Quantile;
use tango_repro::sched::{
    CandidateNode, DssLc, KsNative, LcScheduler, LoadGreedy, Scoring, TypeBatch,
};
use tango_repro::simcore::SimRng;
use tango_repro::types::{
    ClusterId, NodeId, RequestId, Resources, ServiceClass, ServiceId, ServiceSpec, SimTime,
};

fn arb_candidates(rng: &mut SimRng) -> Vec<CandidateNode> {
    let n = 1 + rng.next_below(11) as usize;
    (0..n)
        .map(|i| {
            let cap = rng.next_below(8);
            let delay_ms = 1 + rng.next_below(49);
            let link = 1 + rng.next_below(19) as u32;
            CandidateNode {
                node: NodeId(i as u32),
                cluster: ClusterId((i / 4) as u32),
                total: Resources::cpu_mem(8_000, 16_384),
                available_lc: Resources::cpu_mem(cap * 500, cap * 256),
                available_be: Resources::cpu_mem(cap * 500, cap * 256),
                min_request: Resources::cpu_mem(500, 256),
                delay: SimTime::from_millis(delay_ms),
                link_capacity: link,
                slack: 1.0,
                alive: true,
            }
        })
        .collect()
}

/// Every LC policy: (1) never assigns one request twice, (2) never
/// assigns more requests to a node than its Eq. 2 capacity + the
/// λ-overflow allotment permits for DSS-LC, and never more than
/// capacity for the baselines, (3) never invents request ids.
#[test]
fn lc_policies_respect_capacity_and_uniqueness() {
    let mut rng = SimRng::new(0x1C1C);
    for _ in 0..128 {
        let nodes = arb_candidates(&mut rng);
        let n_requests = rng.next_below(60);
        let seed = rng.next_u64();
        let batch = TypeBatch {
            service: ServiceId(0),
            requests: (0..n_requests).map(RequestId).collect(),
            nodes: nodes.into(),
        };
        let caps: Vec<u64> = batch.nodes.iter().map(|n| n.capacity_now(true)).collect();

        // baselines: hard capacity bound
        let mut baselines: Vec<Box<dyn LcScheduler>> = vec![
            Box::new(LoadGreedy),
            Box::new(KsNative::default()),
            Box::new(Scoring::default()),
        ];
        for sched in &mut baselines {
            let out = sched.assign(&batch);
            let mut seen = std::collections::HashSet::new();
            let mut per_node = vec![0u64; batch.nodes.len()];
            for &(rid, node) in &out {
                assert!(seen.insert(rid), "{}: duplicate {rid}", sched.name());
                assert!(batch.requests.contains(&rid));
                let idx = batch.nodes.iter().position(|c| c.node == node).unwrap();
                per_node[idx] += 1;
            }
            for (i, &count) in per_node.iter().enumerate() {
                assert!(count <= caps[i], "{}: node {i} over capacity", sched.name());
            }
        }

        // DSS-LC: uniqueness + totality (assigned + unrouted = all)
        let mut dss = DssLc::new(seed);
        let plan = dss.plan(&batch);
        let mut seen = std::collections::HashSet::new();
        for (rid, _) in plan.all() {
            assert!(seen.insert(rid), "dss-lc duplicate {rid}");
        }
        for rid in &plan.unrouted {
            assert!(seen.insert(*rid), "unrouted overlaps assigned");
        }
        assert_eq!(seen.len() as u64, n_requests);
        // immediate set respects instantaneous capacity and link caps
        let mut per_node = vec![0u64; batch.nodes.len()];
        for &(_, node) in &plan.immediate {
            let idx = batch.nodes.iter().position(|c| c.node == node).unwrap();
            per_node[idx] += 1;
        }
        for (i, &count) in per_node.iter().enumerate() {
            assert!(count <= caps[i].min(batch.nodes[i].link_capacity as u64));
        }
    }
}

/// Work conservation in the execution model: total completed work
/// equals what was admitted, regardless of when limits change.
#[test]
fn node_conserves_work_across_limit_changes() {
    let mut rng = SimRng::new(0xC0517);
    for _ in 0..48 {
        let n_demands = 1 + rng.next_below(5) as usize;
        let demands: Vec<u64> = (0..n_demands).map(|_| 100 + rng.next_below(700)).collect();
        let n_changes = rng.next_below(4) as usize;
        let limit_changes: Vec<u64> = (0..n_changes)
            .map(|_| 200 + rng.next_below(3_800))
            .collect();
        let spec = ServiceSpec {
            id: ServiceId(0),
            name: "w".into(),
            class: ServiceClass::Lc,
            min_request: Resources::cpu_mem(500, 64),
            work_milli_ms: 20_000,
            qos_target: SimTime::from_millis(300),
            payload_kib: 64,
        };
        let mut node = Node::new(
            NodeId(0),
            ClusterId(0),
            false,
            Resources::new(8_000, 16_384, 1_000, 100_000),
        );
        node.deploy_service(
            &spec,
            Resources::new(4_000, 8_192, 500, 1_000),
            SimTime::ZERO,
        )
        .unwrap();
        for (i, &cpu) in demands.iter().enumerate() {
            node.admit(
                RequestId(i as u64),
                spec.id,
                Resources::cpu_mem(cpu, 64),
                spec.work_milli_ms,
                SimTime::ZERO,
            )
            .unwrap();
        }
        // change the container limit mid-flight a few times
        let (pod_cg, ctr_cg) = node.scaling_cgroups(spec.id).unwrap();
        let mut t = SimTime::from_millis(5);
        for &cpu in &limit_changes {
            node.advance(t);
            let lim = Resources::new(cpu, 8_192, 500, 1_000);
            let cur = node.cgroups.limit(pod_cg);
            let tmp = cur.max(&lim);
            if tmp != cur {
                node.cgroups.set_limit(t, pod_cg, tmp).unwrap();
            }
            node.cgroups.set_limit(t, ctr_cg, lim).unwrap();
            if tmp != lim {
                node.cgroups.set_limit(t, pod_cg, lim).unwrap();
            }
            node.touch();
            t += SimTime::from_millis(7);
        }
        // run long enough for everything to finish at ≥ the 10m/sliver floor
        node.advance(SimTime::from_secs(3_000));
        let done = node.take_completions();
        assert_eq!(done.len(), demands.len(), "all admitted work completes");
        assert_eq!(node.running_count(), 0);
        let (lc, be) = node.demand_usage();
        assert!(lc.is_zero() && be.is_zero(), "all demand released");
    }
}

/// P² estimator stays within a tolerance band of the exact p95 on
/// smooth distributions (its contract — the parabolic interpolation
/// assumes a locally smooth density; discontinuous mixtures with a
/// jump at the tracked quantile can bias it, which is why the QoS
/// detector's small windows use the exact percentile instead).
#[test]
fn p2_tracks_exact_p95() {
    let mut seeder = SimRng::new(0x9595);
    for _ in 0..24 {
        let seed = seeder.next_u64();
        let mean = seeder.range_f64(10.0, 500.0);
        let mut rng = SimRng::new(seed);
        let mut p2 = P2Quantile::p95();
        let mut xs = Vec::with_capacity(5_000);
        for _ in 0..5_000 {
            let x = rng.exponential(mean);
            p2.observe(x);
            xs.push(x);
        }
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let exact = xs[(0.95 * xs.len() as f64) as usize];
        let est = p2.estimate().unwrap();
        assert!(
            (est - exact).abs() / exact < 0.15,
            "est {est} vs exact {exact} (mean {mean})"
        );
    }
}

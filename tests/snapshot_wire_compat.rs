//! Snapshot *wire-compatibility* regression test.
//!
//! `tests/fixtures/calm_mid.snap` is a committed mid-run checkpoint of
//! the calm golden scenario, captured before the event queue moved from
//! a binary heap to the calendar layout. The checkpoint encoder's
//! contract is that the queue section is serialized sorted by
//! `(at, seq)` — independent of the queue's in-memory layout — so this
//! fixture must keep restoring bit-identically, and the current encoder
//! must keep producing exactly these bytes for the same state.
//!
//! If an intentional format change breaks these tests, bump the snapshot
//! version and regenerate the fixture with
//! `cargo test --test snapshot_wire_compat -- --ignored regen_fixture`.

use tango::{BePolicy, CheckpointPolicy, EdgeCloudSystem, LcPolicy, TangoConfig};
use tango_types::SimTime;

/// Uninterrupted-run digest, shared with `refactor_equivalence.rs`.
const CALM_DIGEST: u64 = 0x6338323c1d6cf929;

/// Sim time the committed fixture was captured at.
const FIXTURE_AT: SimTime = SimTime::from_millis(2_400);

const DURATION: SimTime = SimTime::from_secs(5);

fn fixture_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/calm_mid.snap")
}

/// Same scenario as the calm golden in `refactor_equivalence.rs`.
fn calm_cfg() -> TangoConfig {
    let mut cfg = TangoConfig::physical_testbed();
    cfg.clusters = 2;
    cfg.topology.clusters = 2;
    cfg.workload.lc_rps = 30.0;
    cfg.workload.be_rps = 4.0;
    cfg.lc_policy = LcPolicy::DssLc;
    cfg.be_policy = BePolicy::LoadGreedy;
    cfg
}

/// Reproduce the fixture checkpoint from scratch: the mid-run checkpoint
/// of the calm scenario under the default policy (deterministic, so the
/// bytes are a pure function of the code).
fn regenerate() -> (SimTime, Vec<u8>) {
    let (_, checkpoints) = EdgeCloudSystem::new(calm_cfg())
        .run_checkpointed(DURATION, "golden", CheckpointPolicy::default())
        .expect("checkpointing the calm scenario succeeds");
    let mid = checkpoints
        .into_iter()
        .nth(2)
        .expect("calm run produces at least three checkpoints");
    (mid.at, mid.bytes)
}

#[test]
fn committed_fixture_restores_bit_identically() {
    let bytes = std::fs::read(fixture_path())
        .expect("committed fixture tests/fixtures/calm_mid.snap exists");
    let resumed = EdgeCloudSystem::restore(calm_cfg(), &bytes)
        .expect("fixture from an older build still parses");
    assert_eq!(resumed.now(), FIXTURE_AT, "fixture capture point moved");
    assert_eq!(
        resumed.finish("golden").digest(),
        CALM_DIGEST,
        "run resumed from the committed fixture drifted from the golden"
    );
}

#[test]
fn current_encoder_reproduces_committed_fixture_bytes() {
    let committed = std::fs::read(fixture_path())
        .expect("committed fixture tests/fixtures/calm_mid.snap exists");
    let (at, fresh) = regenerate();
    assert_eq!(at, FIXTURE_AT, "checkpoint cadence moved");
    assert_eq!(
        fresh,
        committed,
        "snapshot encoding drifted from the committed wire format \
         (fresh {} bytes vs committed {}); if intentional, bump the \
         snapshot version and regenerate the fixture",
        fresh.len(),
        committed.len()
    );
}

/// Maintainer tool, not a test: rewrite the fixture from the current
/// encoder. Run with `-- --ignored regen_fixture` after an intentional
/// format change.
#[test]
#[ignore]
fn regen_fixture() {
    let (at, bytes) = regenerate();
    std::fs::create_dir_all(fixture_path().parent().unwrap()).unwrap();
    std::fs::write(fixture_path(), &bytes).unwrap();
    println!("wrote {} bytes at t={:?}", bytes.len(), at);
}

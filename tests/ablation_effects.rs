//! Integration tests for the ablation switches: each design choice,
//! toggled off, must change behaviour in the predicted direction (or at
//! minimum keep the system functional — these are end-to-end sanity
//! pins, not statistical claims).

use tango_repro::tango::{BePolicy, EdgeCloudSystem, LcPolicy, TangoConfig};
use tango_repro::types::SimTime;
use tango_repro::workload::PatternKind;

fn burst_cfg() -> TangoConfig {
    let mut cfg = TangoConfig::physical_testbed();
    cfg.workload.pattern = PatternKind::P1;
    cfg.workload.lc_rps = 1_200.0;
    cfg.workload.be_rps = 20.0;
    cfg.lc_policy = LcPolicy::DssLc;
    cfg.be_policy = BePolicy::LoadGreedy;
    cfg
}

#[test]
fn disabling_overflow_routing_changes_dispatch_behaviour() {
    let on = EdgeCloudSystem::new(burst_cfg()).run(SimTime::from_secs(10), "on");

    let mut cfg = burst_cfg();
    cfg.ablations.dss_overflow_routing = false;
    let off = EdgeCloudSystem::new(cfg).run(SimTime::from_secs(10), "off");

    // both must function end to end
    assert!(on.lc_completed > 0 && off.lc_completed > 0);
    // overflow routing dispatches the R'_k set proactively, so with it ON
    // strictly more requests reach (and complete at) workers under burst
    assert!(
        on.lc_completed >= off.lc_completed,
        "on {} vs off {}",
        on.lc_completed,
        off.lc_completed
    );
}

#[test]
fn disabling_context_filter_still_functions_but_bounces() {
    let mut base = TangoConfig::physical_testbed();
    base.workload.lc_rps = 100.0;
    base.workload.be_rps = 30.0;
    base.be_policy = BePolicy::DcgBe(tango_repro::gnn::EncoderKind::Sage { p: 3 });

    let mut no_filter = base.clone();
    no_filter.ablations.dcg_context_filter = false;

    let with = EdgeCloudSystem::new(base).run(SimTime::from_secs(8), "filter");
    let without = EdgeCloudSystem::new(no_filter).run(SimTime::from_secs(8), "nofilter");
    assert!(with.be_throughput > 0);
    assert!(without.be_throughput > 0);
    // the filtered policy never wastes decisions on infeasible nodes, so
    // it should not complete fewer BE requests (allow small slack for the
    // stochastic policies)
    assert!(
        with.be_throughput as f64 >= without.be_throughput as f64 * 0.85,
        "with {} vs without {}",
        with.be_throughput,
        without.be_throughput
    );
}

#[test]
fn eta_zero_and_large_both_run() {
    for eta in [0.0f32, 4.0] {
        let mut cfg = TangoConfig::physical_testbed();
        cfg.workload.be_rps = 20.0;
        cfg.be_policy = BePolicy::DcgBe(tango_repro::gnn::EncoderKind::Sage { p: 3 });
        cfg.ablations.dcg_eta = eta;
        let r = EdgeCloudSystem::new(cfg).run(SimTime::from_secs(6), "eta");
        assert!(r.be_throughput > 0, "eta={eta} broke the BE path");
    }
}

#[test]
fn presets_are_distinguishable_at_scale() {
    // CERES (local only) must abandon more LC work than Tango when the
    // Zipf-skewed hot cluster saturates, because it cannot offload.
    let base = TangoConfig::dual_space(6);
    let tango = EdgeCloudSystem::new(base.clone().as_tango().into_fast())
        .run(SimTime::from_secs(10), "tango");
    let ceres = EdgeCloudSystem::new(base.as_ceres()).run(SimTime::from_secs(10), "ceres");
    assert!(
        tango.be_throughput > ceres.be_throughput,
        "tango thpt {} vs ceres {}",
        tango.be_throughput,
        ceres.be_throughput
    );
    assert!(tango.mean_utilization > ceres.mean_utilization);
}

/// Helper: swap the learning BE policy for the cheap greedy one so the
/// preset test stays fast; the preset comparison is about local-only vs
/// global dispatch, not the learner.
trait Fast {
    fn into_fast(self) -> TangoConfig;
}
impl Fast for TangoConfig {
    fn into_fast(mut self) -> TangoConfig {
        self.be_policy = BePolicy::LoadGreedy;
        self
    }
}

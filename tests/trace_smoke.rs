//! Smoke tests for the stage-boundary trace hooks: an attached recorder
//! observes complete per-request journeys, and attaching a sink never
//! changes the run itself (the observer invariant the [`TraceSink`]
//! contract demands).

use tango::{EdgeCloudSystem, TangoConfig, TraceEvent, TraceRecorder};
use tango_types::SimTime;

fn cfg() -> TangoConfig {
    let mut cfg = TangoConfig::physical_testbed();
    cfg.clusters = 2;
    cfg.topology.clusters = 2;
    cfg.workload.lc_rps = 30.0;
    cfg.workload.be_rps = 4.0;
    cfg.lc_policy = tango::LcPolicy::DssLc;
    cfg.be_policy = tango::BePolicy::LoadGreedy;
    cfg
}

#[test]
fn recorder_observes_full_request_journeys() {
    let recorder = TraceRecorder::new(500_000);
    let mut system = EdgeCloudSystem::new(cfg());
    system.set_trace(Box::new(recorder.clone()));
    let report = system.run(SimTime::from_secs(5), "traced");

    assert!(report.lc_completed > 0);
    assert!(recorder.total_seen() > 0);

    // Find a completed request and check its timeline has the full
    // arrival -> dispatch -> deliver -> admission -> complete shape.
    let completed = recorder
        .events()
        .into_iter()
        .find_map(|(_, e)| match e {
            TraceEvent::Completion { request, .. } => Some(request),
            _ => None,
        })
        .expect("at least one completion traced");
    let timeline = recorder.timeline(completed);
    let kinds: Vec<&'static str> = timeline.iter().map(|(_, e)| e.kind()).collect();
    for expected in ["arrival", "dispatch", "deliver", "admission", "complete"] {
        assert!(
            kinds.contains(&expected),
            "timeline {kinds:?} missing {expected}"
        );
    }
    // timeline is time-ordered
    for w in timeline.windows(2) {
        assert!(w[0].0 <= w[1].0);
    }
    // every traced arrival count matches the report
    let arrivals = recorder
        .events()
        .iter()
        .filter(|(_, e)| matches!(e, TraceEvent::Arrival { .. }))
        .count() as u64;
    assert!(arrivals >= report.lc_arrived);
}

#[test]
fn attaching_a_sink_does_not_change_the_run() {
    let untraced = EdgeCloudSystem::new(cfg()).run(SimTime::from_secs(5), "plain");

    let mut system = EdgeCloudSystem::new(cfg());
    system.set_trace(Box::new(TraceRecorder::new(1024)));
    let traced = system.run(SimTime::from_secs(5), "traced");

    assert_eq!(untraced.digest(), traced.digest());
}

//! Property-based tests over core invariants, spanning crates.
//!
//! The container this repo builds in has no network access to crates.io,
//! so `proptest` is unavailable; these are the same properties expressed
//! as deterministic seeded sweeps over `SimRng`-generated inputs. Each
//! property runs a few hundred random cases, so a violation that proptest
//! would find is still found — it just won't be shrunk automatically.

use tango_repro::cgroup::{CgroupFs, QosLevel};
use tango_repro::flow::{FlowGraph, MinCostMaxFlow};
use tango_repro::metrics::percentile;
use tango_repro::simcore::{EventQueue, SimRng};
use tango_repro::types::{Resources, SimTime};

const CASES: u64 = 256;

fn arb_resources(rng: &mut SimRng) -> Resources {
    Resources::new(
        rng.next_below(10_000),
        rng.next_below(20_000),
        rng.next_below(2_000),
        rng.next_below(50_000),
    )
}

/// a + b - b == a for all resource vectors.
#[test]
fn resources_add_sub_roundtrip() {
    let mut rng = SimRng::new(0xADD5);
    for _ in 0..CASES {
        let a = arb_resources(&mut rng);
        let b = arb_resources(&mut rng);
        assert_eq!(a + b - b, a);
    }
}

/// saturating_sub never exceeds the minuend and never underflows.
#[test]
fn resources_saturating_sub_bounded() {
    let mut rng = SimRng::new(0x5AB5);
    for _ in 0..CASES {
        let a = arb_resources(&mut rng);
        let b = arb_resources(&mut rng);
        let d = a.saturating_sub(&b);
        assert!(d.fits_within(&a));
        assert_eq!(a.checked_sub(&b).is_some(), b.fits_within(&a));
    }
}

/// capacity_for: the returned count of units always fits, count+1 never does.
#[test]
fn capacity_for_is_maximal() {
    let mut rng = SimRng::new(0xCAFE);
    let mut tried = 0;
    while tried < CASES {
        let avail = arb_resources(&mut rng);
        let unit = arb_resources(&mut rng);
        if unit.is_zero() {
            continue;
        }
        tried += 1;
        let k = avail.capacity_for(&unit);
        assert!(unit.scale(k).fits_within(&avail));
        if k < u64::MAX {
            // unit has at least one nonzero dim, so k+1 units must not fit
            assert!(!unit.scale(k + 1).fits_within(&avail) || unit.is_zero());
        }
    }
}

/// split_compressible partitions exactly.
#[test]
fn split_compressible_partitions() {
    let mut rng = SimRng::new(0x5971);
    for _ in 0..CASES {
        let a = arb_resources(&mut rng);
        let (c, i) = a.split_compressible();
        assert_eq!(c + i, a);
        assert_eq!(c.memory_mib, 0);
        assert_eq!(c.disk_mib, 0);
        assert_eq!(i.cpu_milli, 0);
        assert_eq!(i.bandwidth_mbps, 0);
    }
}

/// Event queue pops in non-decreasing time order regardless of insert order.
#[test]
fn event_queue_is_time_ordered() {
    let mut rng = SimRng::new(0xE0E0);
    for _ in 0..64 {
        let n = 1 + rng.next_below(200) as usize;
        let times: Vec<u64> = (0..n).map(|_| rng.next_below(1_000_000)).collect();
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_micros(t), i);
        }
        let mut last = SimTime::ZERO;
        let mut count = 0;
        while let Some((t, _)) = q.pop() {
            assert!(t >= last);
            last = t;
            count += 1;
        }
        assert_eq!(count, times.len());
    }
}

/// Percentile returns an element of the sample, and p100 is the max.
#[test]
fn percentile_returns_sample_member() {
    let mut rng = SimRng::new(0xBCBC);
    for _ in 0..128 {
        let n = 1 + rng.next_below(100) as usize;
        let samples: Vec<SimTime> = (0..n)
            .map(|_| SimTime::from_micros(rng.next_below(1_000_000)))
            .collect();
        let q = rng.range_f64(0.0, 100.0);
        let p = percentile(&samples, q).unwrap();
        assert!(samples.contains(&p));
        let p100 = percentile(&samples, 100.0).unwrap();
        assert_eq!(p100, *samples.iter().max().unwrap());
        assert!(p <= p100);
    }
}

/// RNG shuffle is always a permutation.
#[test]
fn shuffle_is_permutation() {
    let mut seeder = SimRng::new(0x517F);
    for _ in 0..128 {
        let seed = seeder.next_u64();
        let n = 1 + seeder.next_below(100) as usize;
        let mut rng = SimRng::new(seed);
        let mut v: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..n).collect::<Vec<_>>());
    }
}

/// Min-cost max-flow conserves flow at interior nodes and never
/// exceeds capacities, on random layered graphs.
#[test]
fn flow_conservation_and_capacity() {
    let mut seeder = SimRng::new(0xF10F);
    for _ in 0..64 {
        let seed = seeder.next_u64();
        let width = 2 + seeder.next_below(4) as usize;
        let n_caps = 12 + seeder.next_below(48) as usize;
        let caps: Vec<i64> = (0..n_caps)
            .map(|_| 1 + seeder.next_below(19) as i64)
            .collect();
        let layers = 3;
        let n = 2 + layers * width;
        let mut g = FlowGraph::new(n);
        let node = |l: usize, w: usize| 2 + l * width + w;
        let mut rng = SimRng::new(seed);
        let mut edges = Vec::new();
        let mut ci = 0usize;
        let next_cap = |ci: &mut usize| {
            let c = caps[*ci % caps.len()];
            *ci += 1;
            c
        };
        for w in 0..width {
            edges.push(g.add_edge(0, node(0, w), next_cap(&mut ci), rng.next_below(10) as i64));
            edges.push(g.add_edge(
                node(layers - 1, w),
                1,
                next_cap(&mut ci),
                rng.next_below(10) as i64,
            ));
        }
        for l in 0..layers - 1 {
            for w in 0..width {
                let t = rng.next_below(width as u64) as usize;
                edges.push(g.add_edge(
                    node(l, w),
                    node(l + 1, t),
                    next_cap(&mut ci),
                    rng.next_below(20) as i64,
                ));
            }
        }
        let r = MinCostMaxFlow::new(&mut g).solve(0, 1, i64::MAX);
        assert!(r.flow >= 0);
        // capacity respected on every forward edge
        for &e in &edges {
            assert!(g.flow(e) <= g.capacity(e));
            assert!(g.flow(e) >= 0);
        }
    }
}

/// CGroup invariant: after any sequence of valid ordered scalings,
/// a child's effective limit never exceeds its parent's limit.
#[test]
fn cgroup_child_never_exceeds_parent() {
    let mut rng = SimRng::new(0xC64);
    for _ in 0..64 {
        let n_targets = 1 + rng.next_below(19) as usize;
        let cap = Resources::new(8_000, 8_192, 1_000, 10_000);
        let mut fs = CgroupFs::new(cap);
        let burst = fs.qos_group(QosLevel::Burstable);
        let pod = fs
            .create(
                SimTime::ZERO,
                burst,
                "pod",
                Resources::cpu_mem(1_000, 1_000),
            )
            .unwrap();
        let ctr = fs
            .create(SimTime::ZERO, pod, "ctr", Resources::cpu_mem(1_000, 1_000))
            .unwrap();
        for _ in 0..n_targets {
            let cpu = 1 + rng.next_below(7_999);
            let mem = 1 + rng.next_below(7_999);
            let target = Resources::cpu_mem(cpu, mem.min(8_192));
            // D-VPA ordering: pod to max first, container, pod to target
            let cur_pod = fs.limit(pod);
            let tmp = cur_pod.max(&target);
            if tmp != cur_pod {
                fs.set_limit(SimTime::ZERO, pod, tmp).unwrap();
            }
            fs.set_limit(SimTime::ZERO, ctr, target).unwrap();
            if tmp != target {
                fs.set_limit(SimTime::ZERO, pod, target).unwrap();
            }
            let eff = fs.effective_limit(ctr);
            assert!(eff.fits_within(&fs.limit(pod)));
            assert!(eff.fits_within(&cap));
        }
    }
}

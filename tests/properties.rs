//! Property-based tests over core invariants, spanning crates.

use proptest::prelude::*;
use tango_repro::cgroup::{CgroupFs, QosLevel};
use tango_repro::flow::{FlowGraph, MinCostMaxFlow};
use tango_repro::metrics::percentile;
use tango_repro::simcore::{EventQueue, SimRng};
use tango_repro::types::{Resources, SimTime};

fn arb_resources() -> impl Strategy<Value = Resources> {
    (0u64..10_000, 0u64..20_000, 0u64..2_000, 0u64..50_000)
        .prop_map(|(c, m, b, d)| Resources::new(c, m, b, d))
}

proptest! {
    /// a + b - b == a for all resource vectors.
    #[test]
    fn resources_add_sub_roundtrip(a in arb_resources(), b in arb_resources()) {
        prop_assert_eq!(a + b - b, a);
    }

    /// saturating_sub never exceeds the minuend and never underflows.
    #[test]
    fn resources_saturating_sub_bounded(a in arb_resources(), b in arb_resources()) {
        let d = a.saturating_sub(&b);
        prop_assert!(d.fits_within(&a));
        prop_assert_eq!(a.checked_sub(&b).is_some(), b.fits_within(&a));
    }

    /// capacity_for: the returned count of units always fits, count+1 never does.
    #[test]
    fn capacity_for_is_maximal(avail in arb_resources(), unit in arb_resources()) {
        prop_assume!(!unit.is_zero());
        let k = avail.capacity_for(&unit);
        prop_assert!(unit.scale(k).fits_within(&avail));
        if k < u64::MAX {
            // unit has at least one nonzero dim, so k+1 units must not fit
            prop_assert!(!unit.scale(k + 1).fits_within(&avail) || unit.is_zero());
        }
    }

    /// split_compressible partitions exactly.
    #[test]
    fn split_compressible_partitions(a in arb_resources()) {
        let (c, i) = a.split_compressible();
        prop_assert_eq!(c + i, a);
        prop_assert_eq!(c.memory_mib, 0);
        prop_assert_eq!(c.disk_mib, 0);
        prop_assert_eq!(i.cpu_milli, 0);
        prop_assert_eq!(i.bandwidth_mbps, 0);
    }

    /// Event queue pops in non-decreasing time order regardless of insert order.
    #[test]
    fn event_queue_is_time_ordered(times in proptest::collection::vec(0u64..1_000_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_micros(t), i);
        }
        let mut last = SimTime::ZERO;
        let mut count = 0;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= last);
            last = t;
            count += 1;
        }
        prop_assert_eq!(count, times.len());
    }

    /// Percentile returns an element of the sample, and p100 is the max.
    #[test]
    fn percentile_returns_sample_member(xs in proptest::collection::vec(0u64..1_000_000, 1..100), q in 0.0f64..100.0) {
        let samples: Vec<SimTime> = xs.iter().map(|&x| SimTime::from_micros(x)).collect();
        let p = percentile(&samples, q).unwrap();
        prop_assert!(samples.contains(&p));
        let p100 = percentile(&samples, 100.0).unwrap();
        prop_assert_eq!(p100, *samples.iter().max().unwrap());
        prop_assert!(p <= p100);
    }

    /// RNG shuffle is always a permutation.
    #[test]
    fn shuffle_is_permutation(seed in any::<u64>(), n in 1usize..100) {
        let mut rng = SimRng::new(seed);
        let mut v: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..n).collect::<Vec<_>>());
    }

    /// Min-cost max-flow conserves flow at interior nodes and never
    /// exceeds capacities, on random layered graphs.
    #[test]
    fn flow_conservation_and_capacity(seed in any::<u64>(), width in 2usize..6, caps in proptest::collection::vec(1i64..20, 12..60)) {
        let layers = 3;
        let n = 2 + layers * width;
        let mut g = FlowGraph::new(n);
        let node = |l: usize, w: usize| 2 + l * width + w;
        let mut rng = SimRng::new(seed);
        let mut edges = Vec::new();
        let mut ci = 0usize;
        let next_cap = |ci: &mut usize| { let c = caps[*ci % caps.len()]; *ci += 1; c };
        for w in 0..width {
            edges.push(g.add_edge(0, node(0, w), next_cap(&mut ci), (rng.next_below(10)) as i64));
            edges.push(g.add_edge(node(layers - 1, w), 1, next_cap(&mut ci), (rng.next_below(10)) as i64));
        }
        for l in 0..layers - 1 {
            for w in 0..width {
                let t = rng.next_below(width as u64) as usize;
                edges.push(g.add_edge(node(l, w), node(l + 1, t), next_cap(&mut ci), (rng.next_below(20)) as i64));
            }
        }
        let r = MinCostMaxFlow::new(&mut g).solve(0, 1, i64::MAX);
        prop_assert!(r.flow >= 0);
        // capacity respected on every forward edge
        for &e in &edges {
            prop_assert!(g.flow(e) <= g.capacity(e));
            prop_assert!(g.flow(e) >= 0);
        }
    }

    /// CGroup invariant: after any sequence of valid ordered scalings,
    /// a child's effective limit never exceeds its parent's limit.
    #[test]
    fn cgroup_child_never_exceeds_parent(targets in proptest::collection::vec((1u64..8_000, 1u64..8_000), 1..20)) {
        let cap = Resources::new(8_000, 8_192, 1_000, 10_000);
        let mut fs = CgroupFs::new(cap);
        let burst = fs.qos_group(QosLevel::Burstable);
        let pod = fs.create(SimTime::ZERO, burst, "pod", Resources::cpu_mem(1_000, 1_000)).unwrap();
        let ctr = fs.create(SimTime::ZERO, pod, "ctr", Resources::cpu_mem(1_000, 1_000)).unwrap();
        for (cpu, mem) in targets {
            let target = Resources::cpu_mem(cpu, mem.min(8_192));
            // D-VPA ordering: pod to max first, container, pod to target
            let cur_pod = fs.limit(pod);
            let tmp = cur_pod.max(&target);
            if tmp != cur_pod { fs.set_limit(SimTime::ZERO, pod, tmp).unwrap(); }
            fs.set_limit(SimTime::ZERO, ctr, target).unwrap();
            if tmp != target { fs.set_limit(SimTime::ZERO, pod, target).unwrap(); }
            let eff = fs.effective_limit(ctr);
            prop_assert!(eff.fits_within(&fs.limit(pod)));
            prop_assert!(eff.fits_within(&cap));
        }
    }
}

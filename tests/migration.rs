//! Cloud-tier + migration end-to-end tests.
//!
//! The elastic cloud tier and the defragmentation pass claim three
//! properties, each pinned here:
//!
//! 1. **Cloud-off is invisible** — with `cloud: None, defrag: None`
//!    (the default) the run is byte-for-byte the pre-cloud run; the
//!    refactor-equivalence goldens carry that check, this file asserts
//!    the defaults themselves.
//! 2. **Cloud-on is deterministic** — a migration-heavy run digests to a
//!    pinned constant, bit-identical at 1, 4 and 8 worker threads.
//! 3. **Migration round-trips through checkpoints** — snapshots taken
//!    while pod checkpoints are mid-transfer restore into runs whose
//!    final digest equals the uninterrupted one.

use tango::{
    BePolicy, CheckpointPolicy, CloudConfig, DefragConfig, EdgeCloudSystem, LcPolicy, RunReport,
    TangoConfig,
};
use tango_types::SimTime;

/// Digest of `cloud_cfg()` run for 5 s, pinned when the cloud tier
/// landed. Bit-identical at every thread count.
const MIGRATION_DIGEST: u64 = 0x397ff8838e721112;

/// A BE-heavy two-cluster run with the cloud tier attached and an
/// aggressive defrag cadence — hot thresholds low enough that the
/// KubeDSM pass fires repeatedly.
fn cloud_cfg() -> TangoConfig {
    let mut cfg = TangoConfig::physical_testbed();
    cfg.clusters = 2;
    cfg.topology.clusters = 2;
    cfg.workload.lc_rps = 30.0;
    cfg.workload.be_rps = 24.0;
    cfg.lc_policy = LcPolicy::DssLc;
    cfg.be_policy = BePolicy::LoadGreedy;
    cfg.cloud = Some(CloudConfig::default());
    cfg.defrag = Some(DefragConfig {
        every_n_ticks: 2,
        max_moves: 8,
        hot_threshold: 0.5,
        cold_threshold: 0.35,
    });
    cfg
}

const HORIZON: SimTime = SimTime::from_secs(5);

fn run(cfg: TangoConfig) -> RunReport {
    EdgeCloudSystem::new(cfg).run(HORIZON, "cloud")
}

#[test]
fn cloud_and_defrag_are_off_by_default() {
    let cfg = TangoConfig::physical_testbed();
    assert!(cfg.cloud.is_none());
    assert!(cfg.defrag.is_none());
}

#[test]
fn migration_heavy_run_matches_pinned_digest_and_actually_migrates() {
    let r = run(cloud_cfg());
    assert!(r.migrations_started > 0, "defrag pass never fired");
    assert_eq!(
        r.migrations_completed,
        r.migrations_started,
        "calm-weather migrations must all land: {}",
        r.summary()
    );
    assert!(r.cloud_egress_kib > 0, "no traffic crossed to the cloud");
    assert_eq!(
        r.digest(),
        MIGRATION_DIGEST,
        "cloud-enabled run drifted (report: {})",
        r.summary()
    );
}

#[test]
fn migration_run_is_bit_identical_across_thread_counts() {
    for threads in [1usize, 4, 8] {
        let mut cfg = cloud_cfg();
        cfg.parallelism = Some(threads);
        let r = run(cfg);
        assert_eq!(
            r.digest(),
            MIGRATION_DIGEST,
            "digest drifted at {threads} threads"
        );
    }
}

#[test]
fn migration_counters_land_in_the_csv() {
    let r = run(cloud_cfg());
    let csv = r.periods_csv();
    let header = csv.lines().next().unwrap();
    assert!(header.ends_with("migrations_started,migrations_completed,cloud_egress_kib"));
    let started: u64 = r.periods.iter().map(|p| p.migrations_started).sum();
    assert_eq!(started, r.migrations_started);
}

#[test]
fn mid_migration_checkpoint_restores_bit_identically() {
    let uninterrupted = run(cloud_cfg()).digest();
    // Checkpoint every sync tick: defrag fires every second tick and
    // cloud transfers take ≥ the 40 ms one-way base, so the checkpoint
    // taken at a defrag boundary always captures in-flight transfers.
    let (report, checkpoints) = EdgeCloudSystem::new(cloud_cfg())
        .run_checkpointed(
            HORIZON,
            "cloud",
            CheckpointPolicy {
                every_n_ticks: 2,
                keep_last_k: 0,
            },
        )
        .expect("checkpointing succeeds");
    assert_eq!(
        report.digest(),
        uninterrupted,
        "checkpoint hook perturbed the run"
    );
    assert!(report.migrations_started > 0);
    assert!(checkpoints.len() > 3);
    // Restore a prefix of checkpoints spanning the migration bursts and
    // drive each to the horizon: every resume must reproduce the digest.
    for cp in checkpoints.iter().step_by(4) {
        let resumed = EdgeCloudSystem::restore(cloud_cfg(), &cp.bytes)
            .unwrap_or_else(|e| panic!("restore at {:?} failed: {e:?}", cp.at));
        let r = resumed.finish("cloud");
        assert_eq!(
            r.digest(),
            uninterrupted,
            "resume from {:?} diverged ({})",
            cp.at,
            r.summary()
        );
    }
}

#[test]
fn egress_budget_closes_the_cloud_tier() {
    let unlimited = run(cloud_cfg());
    let mut cfg = cloud_cfg();
    cfg.cloud.as_mut().unwrap().egress_budget_kib = Some(8_192);
    let capped = run(cfg);
    assert!(
        capped.cloud_egress_kib < unlimited.cloud_egress_kib,
        "budget had no effect: {} vs {}",
        capped.cloud_egress_kib,
        unlimited.cloud_egress_kib
    );
    // The flip is monotonic: once cumulative egress crosses the budget,
    // every later period ships nothing to the cloud.
    let mut cumulative = 0u64;
    let mut closed_at = None;
    for (i, p) in capped.periods.iter().enumerate() {
        if closed_at.is_some() {
            assert_eq!(
                p.cloud_egress_kib, 0,
                "egress after the budget flip in period {i}"
            );
        }
        cumulative += p.cloud_egress_kib;
        if cumulative >= 8_192 && closed_at.is_none() {
            closed_at = Some(i);
        }
    }
    assert!(closed_at.is_some(), "budget was never reached");
}

//! End-to-end integration tests: the full Tango stack (trace → dispatch →
//! HRM allocation → execution → QoS detection → re-assurance) across
//! crates.

use tango_repro::tango::{AllocatorKind, BePolicy, EdgeCloudSystem, LcPolicy, TangoConfig};
use tango_repro::types::SimTime;
use tango_repro::workload::PatternKind;

fn base_cfg() -> TangoConfig {
    let mut cfg = TangoConfig::physical_testbed();
    cfg.clusters = 2;
    cfg.topology.clusters = 2;
    cfg.workload.lc_rps = 40.0;
    cfg.workload.be_rps = 8.0;
    cfg.be_policy = BePolicy::LoadGreedy; // cheap BE side for CI speed
    cfg
}

#[test]
fn tango_meets_most_qos_targets_under_moderate_load() {
    let report = EdgeCloudSystem::new(base_cfg()).run(SimTime::from_secs(15), "e2e");
    assert!(report.lc_arrived > 300);
    assert!(
        report.qos_satisfaction > 0.8,
        "qos = {}",
        report.qos_satisfaction
    );
    assert!(report.be_throughput > 20);
    // resources were actually used and reclaimed
    assert!(report.mean_utilization > 0.02);
    assert!(report.dvpa_ops > 0, "HRM must be exercising D-VPA");
}

#[test]
fn hrm_beats_static_allocation_on_utilization_and_qos() {
    // the Fig. 9 headline as an assertion, pattern P3
    let mut hrm_cfg = base_cfg();
    hrm_cfg.workload.pattern = PatternKind::P3;
    hrm_cfg.workload.lc_rps = 80.0;
    hrm_cfg.workload.be_rps = 16.0;
    hrm_cfg.lc_policy = LcPolicy::KsNative;
    hrm_cfg.be_policy = BePolicy::KsNative;

    let mut static_cfg = hrm_cfg.clone();
    static_cfg.allocator = AllocatorKind::Static;
    static_cfg.reassurance = None;

    let hrm = EdgeCloudSystem::new(hrm_cfg).run(SimTime::from_secs(15), "hrm");
    let stat = EdgeCloudSystem::new(static_cfg).run(SimTime::from_secs(15), "static");

    assert!(
        hrm.mean_utilization > stat.mean_utilization,
        "HRM util {} vs static {}",
        hrm.mean_utilization,
        stat.mean_utilization
    );
    assert!(
        hrm.qos_satisfaction > stat.qos_satisfaction,
        "HRM qos {} vs static {}",
        hrm.qos_satisfaction,
        stat.qos_satisfaction
    );
}

#[test]
fn dss_lc_beats_round_robin_under_pressure() {
    // the Fig. 11(a) ordering as an assertion: scheduling quality only
    // differentiates when bursts overload the preferred nodes, so drive
    // the full 4-cluster testbed with a P1 spike train around its
    // ~1.3k req/s capacity.
    let mut dss_cfg = TangoConfig::physical_testbed();
    dss_cfg.workload.pattern = PatternKind::P1;
    dss_cfg.workload.lc_rps = 1_200.0;
    dss_cfg.workload.be_rps = 20.0;
    dss_cfg.be_policy = BePolicy::LoadGreedy;
    dss_cfg.lc_policy = LcPolicy::DssLc;
    let mut rr_cfg = dss_cfg.clone();
    rr_cfg.lc_policy = LcPolicy::KsNative;

    let dss = EdgeCloudSystem::new(dss_cfg).run(SimTime::from_secs(15), "dss");
    let rr = EdgeCloudSystem::new(rr_cfg).run(SimTime::from_secs(15), "rr");

    assert!(
        dss.qos_satisfaction > rr.qos_satisfaction,
        "dss {} vs rr {}",
        dss.qos_satisfaction,
        rr.qos_satisfaction
    );
    assert!(
        dss.abandoned < rr.abandoned,
        "dss abandoned {} vs rr {}",
        dss.abandoned,
        rr.abandoned
    );
}

#[test]
fn reassurance_does_not_hurt_qos() {
    let mut with = base_cfg();
    with.workload.lc_rps = 100.0;
    let mut without = with.clone();
    without.reassurance = None;

    let w = EdgeCloudSystem::new(with).run(SimTime::from_secs(15), "with");
    let wo = EdgeCloudSystem::new(without).run(SimTime::from_secs(15), "without");
    assert!(
        w.qos_satisfaction >= wo.qos_satisfaction - 0.05,
        "with {} vs without {}",
        w.qos_satisfaction,
        wo.qos_satisfaction
    );
}

#[test]
fn be_work_is_conserved_not_lost() {
    // every BE request is completed, abandoned, failed, or still queued /
    // running at the horizon — never silently dropped.
    let mut cfg = base_cfg();
    cfg.workload.lc_rps = 60.0;
    cfg.workload.be_rps = 20.0;
    let report = EdgeCloudSystem::new(cfg).run(SimTime::from_secs(10), "conserve");
    let be_arrived: u64 = report.periods.iter().map(|p| p.be_completed).sum::<u64>();
    assert_eq!(be_arrived, report.be_throughput);
    // LC accounting is consistent
    let lc_done: u64 = report.periods.iter().map(|p| p.lc_completed).sum();
    let lc_ok: u64 = report.periods.iter().map(|p| p.lc_satisfied).sum();
    assert!(lc_ok <= lc_done);
    assert!(lc_done <= report.lc_arrived);
}

#[test]
fn learning_be_policy_runs_end_to_end() {
    let mut cfg = base_cfg();
    cfg.be_policy = BePolicy::DcgBe(tango_repro::gnn::EncoderKind::Sage { p: 3 });
    cfg.workload.be_rps = 16.0;
    let report = EdgeCloudSystem::new(cfg).run(SimTime::from_secs(10), "dcg");
    assert!(report.be_throughput > 10, "thpt {}", report.be_throughput);
}

#[test]
fn dual_space_heterogeneous_layout_runs() {
    let mut cfg = TangoConfig::dual_space(6);
    cfg.workload.lc_rps = 60.0;
    cfg.workload.be_rps = 10.0;
    cfg.be_policy = BePolicy::LoadGreedy;
    let sys = EdgeCloudSystem::new(cfg);
    let workers = sys.worker_count();
    assert!((18..=120).contains(&workers), "workers = {workers}");
    let report = sys.run(SimTime::from_secs(8), "dual");
    assert!(report.lc_completed > 0);
    assert!(report.be_throughput > 0);
}

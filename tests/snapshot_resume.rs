//! Snapshot/resume equivalence tests for the `tango-snap` checkpoint
//! subsystem.
//!
//! The contract under test: checkpoint a run mid-flight, restore the
//! snapshot onto a fresh system built from the same config, run to the
//! end — and the final `RunReport` digest is bit-identical to the
//! uninterrupted run. The uninterrupted goldens are the same constants
//! `refactor_equivalence.rs` pins, so a resumed run is simultaneously
//! checked against the pre-refactor monolith. Corruption of any kind
//! (truncation, bit flips, version bumps, wrong config) must surface as
//! a typed `SnapError`, never a panic or a silently wrong resume.

use tango::{
    BePolicy, CheckpointPolicy, EdgeCloudSystem, FaultPlan, LcPolicy, NodeRef, SnapError,
    TangoConfig,
};
use tango_types::{ClusterId, SimTime};

/// Uninterrupted-run digests, shared with `refactor_equivalence.rs`.
const CALM_DIGEST: u64 = 0x6338323c1d6cf929;
const CHURN_DIGEST: u64 = 0xee21677c6a08d16d;

const DURATION: SimTime = SimTime::from_secs(5);

fn calm_cfg() -> TangoConfig {
    let mut cfg = TangoConfig::physical_testbed();
    cfg.clusters = 2;
    cfg.topology.clusters = 2;
    cfg.workload.lc_rps = 30.0;
    cfg.workload.be_rps = 4.0;
    cfg.lc_policy = LcPolicy::DssLc;
    cfg.be_policy = BePolicy::LoadGreedy;
    cfg
}

fn churn_cfg() -> TangoConfig {
    let mut cfg = calm_cfg();
    cfg.faults = FaultPlan::new()
        .crash_for(
            SimTime::from_millis(900),
            NodeRef::Worker {
                cluster: ClusterId(0),
                index: 1,
            },
            SimTime::from_millis(1_400),
        )
        .degrade_link_for(
            SimTime::from_millis(1_200),
            ClusterId(0),
            ClusterId(1),
            3.0,
            4.0,
            SimTime::from_millis(1_400),
        );
    cfg
}

/// Checkpoint every 8 ticks (800 ms at the paper's 100 ms sync interval),
/// run to the end, restore the mid-run checkpoint and finish from there.
fn resume_digest(cfg: TangoConfig) -> (u64, u64) {
    let (report, checkpoints) = EdgeCloudSystem::new(cfg.clone())
        .run_checkpointed(DURATION, "golden", CheckpointPolicy::default())
        .expect("checkpointing a snapshottable config succeeds");
    assert!(
        checkpoints.len() >= 3,
        "expected several checkpoints over 5 s, got {}",
        checkpoints.len()
    );
    // a checkpoint from the middle of the run, with real in-flight state
    let mid = &checkpoints[checkpoints.len() / 2];
    assert!(mid.at > SimTime::ZERO && mid.at < DURATION);
    let resumed = EdgeCloudSystem::restore(cfg, &mid.bytes).expect("restore succeeds");
    assert_eq!(resumed.now(), mid.at);
    (report.digest(), resumed.finish("golden").digest())
}

#[test]
fn calm_resume_matches_uninterrupted_golden() {
    let (checkpointed, resumed) = resume_digest(calm_cfg());
    assert_eq!(
        checkpointed, CALM_DIGEST,
        "segmented (checkpointed) run drifted from the uninterrupted golden"
    );
    assert_eq!(
        resumed, CALM_DIGEST,
        "restored run drifted from the uninterrupted golden"
    );
}

#[test]
fn churn_resume_matches_uninterrupted_golden() {
    let (checkpointed, resumed) = resume_digest(churn_cfg());
    assert_eq!(
        checkpointed, CHURN_DIGEST,
        "segmented (checkpointed) run under fault churn drifted from the golden"
    );
    assert_eq!(
        resumed, CHURN_DIGEST,
        "restored run under fault churn drifted from the golden"
    );
}

#[test]
fn resume_is_thread_count_invariant() {
    // snapshot at 4 workers, restore at 1 (and vice versa): the config
    // fingerprint masks `parallelism`, and the digest must not move.
    let scenarios: [(fn() -> TangoConfig, u64); 2] =
        [(calm_cfg, CALM_DIGEST), (churn_cfg, CHURN_DIGEST)];
    for (cfg_fn, golden) in scenarios {
        let mut snap_cfg = cfg_fn();
        snap_cfg.parallelism = Some(4);
        let (_, checkpoints) = EdgeCloudSystem::new(snap_cfg)
            .run_checkpointed(DURATION, "golden", CheckpointPolicy::default())
            .unwrap();
        let mid = &checkpoints[checkpoints.len() / 2];
        let mut restore_cfg = cfg_fn();
        restore_cfg.parallelism = Some(1);
        let resumed = EdgeCloudSystem::restore(restore_cfg, &mid.bytes).unwrap();
        assert_eq!(resumed.finish("golden").digest(), golden);
    }
}

#[test]
fn restored_state_resnapshots_to_identical_bytes() {
    // every map is encoded in sorted order and every scratch structure is
    // excluded, so snapshot(restore(snapshot(x))) is byte-stable
    let cfg = calm_cfg();
    let (_, checkpoints) = EdgeCloudSystem::new(cfg.clone())
        .run_checkpointed(DURATION, "golden", CheckpointPolicy::default())
        .unwrap();
    let mid = &checkpoints[checkpoints.len() / 2];
    let resumed = EdgeCloudSystem::restore(cfg, &mid.bytes).unwrap();
    let again = resumed.snapshot().unwrap();
    assert_eq!(again, mid.bytes, "re-snapshot of restored state drifted");
}

#[test]
fn keep_last_k_bounds_retention() {
    let policy = CheckpointPolicy {
        every_n_ticks: 4,
        keep_last_k: 2,
    };
    let (_, checkpoints) = EdgeCloudSystem::new(calm_cfg())
        .run_checkpointed(DURATION, "golden", policy)
        .unwrap();
    assert_eq!(checkpoints.len(), 2);
    assert!(checkpoints[0].at < checkpoints[1].at, "oldest first");
}

fn sample_snapshot() -> (TangoConfig, Vec<u8>) {
    let cfg = calm_cfg();
    let (_, checkpoints) = EdgeCloudSystem::new(cfg.clone())
        .run_checkpointed(SimTime::from_secs(2), "golden", CheckpointPolicy::default())
        .unwrap();
    (cfg, checkpoints[0].bytes.clone())
}

#[test]
fn truncated_snapshot_is_rejected_not_panicking() {
    let (cfg, bytes) = sample_snapshot();
    for cut in [0, 1, 8, 9, 17, 30, bytes.len() / 2, bytes.len() - 1] {
        assert!(
            EdgeCloudSystem::restore(cfg.clone(), &bytes[..cut]).is_err(),
            "prefix of {cut} bytes restored successfully"
        );
    }
}

#[test]
fn flipped_bit_fails_the_checksum() {
    let (cfg, mut bytes) = sample_snapshot();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    assert!(matches!(
        EdgeCloudSystem::restore(cfg, &bytes),
        Err(SnapError::BadChecksum { .. })
    ));
}

#[test]
fn version_bump_is_rejected_before_decoding() {
    let (cfg, mut bytes) = sample_snapshot();
    bytes[8] = 0xFF; // the format-version word follows the 8-byte magic
    assert!(matches!(
        EdgeCloudSystem::restore(cfg, &bytes),
        Err(SnapError::VersionMismatch { .. })
    ));
}

#[test]
fn wrong_config_is_rejected_by_fingerprint() {
    let (_, bytes) = sample_snapshot();
    assert!(matches!(
        EdgeCloudSystem::restore(churn_cfg(), &bytes),
        Err(SnapError::ConfigMismatch { .. })
    ));
}

#[test]
fn garbage_bytes_are_rejected() {
    assert!(matches!(
        EdgeCloudSystem::restore(calm_cfg(), b"not a snapshot at all"),
        Err(SnapError::BadMagic)
    ));
}

#[test]
fn rl_policies_round_trip_through_checkpoints() {
    // Learned policies (network weights, optimizer moments, RNG streams,
    // replay rings) ride in the scheduler blob: a resumed RL run must
    // land on the same digest as the uninterrupted one.
    for be in [BePolicy::GnnSac, BePolicy::Td3] {
        let mut cfg = calm_cfg();
        cfg.be_policy = be;
        cfg.workload.be_rps = 8.0; // enough BE traffic to train mid-run
        let (report, checkpoints) = EdgeCloudSystem::new(cfg.clone())
            .run_checkpointed(DURATION, "rl", CheckpointPolicy::default())
            .expect("RL policies are snapshottable");
        let mid = &checkpoints[checkpoints.len() / 2];
        assert!(mid.at > SimTime::ZERO && mid.at < DURATION);
        let resumed = EdgeCloudSystem::restore(cfg, &mid.bytes).expect("restore succeeds");
        assert_eq!(
            resumed.finish("rl").digest(),
            report.digest(),
            "resumed {} run drifted from the uninterrupted one",
            be.name()
        );
    }
}

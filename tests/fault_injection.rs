//! End-to-end fault-injection tests: the tango-faults subsystem wired
//! through the whole system must (a) never lose a request or leave one
//! on a dead node, (b) actually reroute interrupted work, and (c) stay
//! bit-identical across thread counts even under heavy churn.

use tango::{
    BePolicy, EdgeCloudSystem, FaultPlan, LcPolicy, NodeRef, RunAudit, RunReport, TangoConfig,
};
use tango_types::{ClusterId, SimTime};

/// The acceptance scenario from the issue: at least three node crashes
/// (two timed + staggered recoveries, plus seeded churn on top) and one
/// link degradation, on the physical-testbed layout.
fn churn_cfg(threads: Option<usize>) -> TangoConfig {
    let mut cfg = TangoConfig::physical_testbed();
    cfg.clusters = 3;
    cfg.topology.clusters = 3;
    cfg.workload.lc_rps = 90.0;
    cfg.workload.be_rps = 12.0;
    cfg.lc_policy = LcPolicy::DssLc;
    cfg.be_policy = BePolicy::LoadGreedy;
    cfg.parallelism = threads;
    cfg.faults = FaultPlan::new()
        .crash_for(
            SimTime::from_secs(1),
            NodeRef::Worker {
                cluster: ClusterId(0),
                index: 0,
            },
            SimTime::from_secs(2),
        )
        .crash_for(
            SimTime::from_secs(2),
            NodeRef::Worker {
                cluster: ClusterId(1),
                index: 1,
            },
            SimTime::from_secs(3),
        )
        .degrade_link_for(
            SimTime::from_secs(3),
            ClusterId(0),
            ClusterId(2),
            8.0,
            4.0,
            SimTime::from_secs(4),
        )
        .node_churn(SimTime::from_secs(6), SimTime::from_secs(1), 0xFA117)
        .master_failover(SimTime::from_secs(5), ClusterId(2), SimTime::from_secs(2));
    cfg
}

fn run_churn(threads: usize) -> (RunReport, RunAudit) {
    EdgeCloudSystem::new(churn_cfg(Some(threads))).run_audited(SimTime::from_secs(10), "churn")
}

#[test]
fn churn_conserves_every_request_and_never_uses_down_nodes() {
    let (report, audit) = run_churn(1);
    let f = &report.faults;

    // the scenario actually happened: ≥ 3 crashes, a degraded link, a
    // master failover window, real downtime, real rescheduling
    assert!(f.node_crashes >= 3, "only {} crashes", f.node_crashes);
    assert!(f.links_degraded >= 1);
    assert!(f.master_failovers >= 1);
    assert!(f.total_downtime > SimTime::ZERO);
    assert!(f.rescheduled > 0, "no interrupted work was rescheduled");

    // the system survived it: work still completes end to end
    assert!(report.lc_arrived > 100, "workload too small");
    assert!(report.lc_completed > 0);
    assert!(report.be_throughput > 0);

    // invariant 1: nothing is ever dispatched to a node known dead
    assert_eq!(f.down_node_dispatches, 0, "dispatch to a down node");
    // invariant 2: no request is left running on a dead node
    assert_eq!(audit.running_on_down_nodes, 0, "{audit:?}");
    // invariant 3: conservation — every arrival is in exactly one bucket
    assert!(
        audit.conserved(),
        "requests lost or double-counted: {audit:?}"
    );
    assert_eq!(audit.total, report.lc_arrived + be_total(&report, &audit));
}

/// BE arrivals are not separately reported, so recover them from the
/// audit identity instead of trusting a second counter.
fn be_total(report: &RunReport, audit: &RunAudit) -> u64 {
    audit.total - report.lc_arrived
}

#[test]
fn churn_heavy_run_is_bit_identical_across_thread_counts() {
    let (a_report, a_audit) = run_churn(1);
    let (b_report, b_audit) = run_churn(4);
    assert!(a_report.faults.node_crashes >= 3, "scenario too calm");
    assert_eq!(a_audit, b_audit);
    assert_eq!(a_report.faults, b_report.faults);
    // Debug formatting of f64 is value-exact (shortest round-trip), so
    // string equality here is bitwise equality of every field.
    assert_eq!(format!("{a_report:?}"), format!("{b_report:?}"));
}

#[test]
fn master_failover_reroutes_dispatch_through_a_stand_in() {
    let mut cfg = TangoConfig::physical_testbed();
    cfg.clusters = 2;
    cfg.topology.clusters = 2;
    cfg.workload.lc_rps = 40.0;
    cfg.workload.be_rps = 6.0;
    cfg.lc_policy = LcPolicy::DssLc;
    cfg.be_policy = BePolicy::LoadGreedy;
    // master of cluster 0 is down for the middle 4 s of a 8 s run
    cfg.faults = FaultPlan::new().master_failover(
        SimTime::from_secs(2),
        ClusterId(0),
        SimTime::from_secs(4),
    );
    let (report, audit) = EdgeCloudSystem::new(cfg).run_audited(SimTime::from_secs(8), "failover");

    assert_eq!(report.faults.master_failovers, 1);
    assert!(report.faults.total_downtime >= SimTime::from_secs(4));
    // the stand-in master kept cluster 0's traffic flowing: far more
    // completions than the calm windows alone could produce
    assert!(
        report.lc_completed as f64 > report.lc_arrived as f64 * 0.5,
        "failover stalled dispatch: {}/{}",
        report.lc_completed,
        report.lc_arrived
    );
    assert!(audit.conserved());
    assert_eq!(report.faults.down_node_dispatches, 0);
    assert_eq!(audit.running_on_down_nodes, 0);
}

/// Cloud-enabled, defrag-heavy run whose fault plan crashes migration
/// *endpoints* mid-transfer: defrag fires on the 200 ms sync-tick grid
/// and cloud transfers take ≥ the 40 ms one-way base, so crashes placed
/// 10 ms after defrag boundaries land while checkpoints are in flight.
/// Cluster 2 is the cloud tier (destinations); clusters 0–1 are the hot
/// edge (sources).
fn migration_churn_cfg(threads: Option<usize>) -> TangoConfig {
    let mut cfg = TangoConfig::physical_testbed();
    cfg.clusters = 2;
    cfg.topology.clusters = 2;
    cfg.workload.lc_rps = 30.0;
    cfg.workload.be_rps = 24.0;
    cfg.lc_policy = LcPolicy::DssLc;
    cfg.be_policy = BePolicy::LoadGreedy;
    cfg.parallelism = threads;
    cfg.cloud = Some(tango::CloudConfig::default());
    cfg.defrag = Some(tango::DefragConfig {
        every_n_ticks: 2,
        max_moves: 8,
        hot_threshold: 0.5,
        cold_threshold: 0.35,
    });
    let mut plan = FaultPlan::new();
    // destination crashes: take down half the cloud workers just after
    // successive defrag boundaries
    for (i, at_ms) in [1_210u64, 1_410, 1_610, 1_810].into_iter().enumerate() {
        plan = plan.crash_for(
            SimTime::from_millis(at_ms),
            NodeRef::Worker {
                cluster: ClusterId(2),
                index: i,
            },
            SimTime::from_millis(at_ms + 900),
        );
    }
    // source crashes: hot edge workers just after defrag boundaries
    plan = plan
        .crash_for(
            SimTime::from_millis(1_010),
            NodeRef::Worker {
                cluster: ClusterId(0),
                index: 1,
            },
            SimTime::from_millis(2_000),
        )
        .crash_for(
            SimTime::from_millis(1_210),
            NodeRef::Worker {
                cluster: ClusterId(1),
                index: 2,
            },
            SimTime::from_millis(2_200),
        );
    cfg.faults = plan;
    cfg
}

#[test]
fn migrations_survive_endpoint_crashes_without_losing_requests() {
    let (report, audit) =
        EdgeCloudSystem::new(migration_churn_cfg(Some(1))).run_audited(SimTime::from_secs(5), "mc");
    // the scenario is live: migrations actually started, crashes hit
    assert!(report.migrations_started > 0, "defrag never fired");
    assert!(report.faults.node_crashes >= 6);
    // conservation: every request is in exactly one bucket — a crash of
    // a migration source cannot lose the detached work, a crash of the
    // destination bounces it back to the scheduler
    assert!(audit.conserved(), "requests lost: {audit:?}");
    assert_eq!(audit.running_on_down_nodes, 0, "{audit:?}");
    assert_eq!(report.faults.down_node_dispatches, 0);
    // crashes actually interrupted transfers: some migrations never
    // landed, and at least one arrival bounced off a crashed destination
    // (seeded run: 40 started / 32 landed / 1 bounced)
    assert!(
        report.migrations_completed < report.migrations_started,
        "{}/{} — no migration was interrupted",
        report.migrations_completed,
        report.migrations_started
    );
    assert!(
        report.faults.bounced_deliveries >= 1,
        "no mid-transfer destination crash was observed"
    );
}

#[test]
fn migration_churn_is_bit_identical_across_thread_counts() {
    let (a_report, a_audit) =
        EdgeCloudSystem::new(migration_churn_cfg(Some(1))).run_audited(SimTime::from_secs(5), "mc");
    let (b_report, b_audit) =
        EdgeCloudSystem::new(migration_churn_cfg(Some(4))).run_audited(SimTime::from_secs(5), "mc");
    assert!(a_report.migrations_started > 0);
    assert_eq!(a_audit, b_audit);
    assert_eq!(a_report.faults, b_report.faults);
    assert_eq!(format!("{a_report:?}"), format!("{b_report:?}"));
}

#[test]
fn calm_weather_run_reports_zero_fault_activity() {
    let mut cfg = TangoConfig::physical_testbed();
    cfg.clusters = 2;
    cfg.topology.clusters = 2;
    cfg.be_policy = BePolicy::LoadGreedy;
    let (report, audit) = EdgeCloudSystem::new(cfg).run_audited(SimTime::from_secs(3), "calm");
    assert_eq!(report.faults, tango::FaultSummary::default());
    assert!(audit.conserved());
}

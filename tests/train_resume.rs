//! Resume-equivalence for the training harness: a killed-and-resumed
//! training run must reproduce the uninterrupted run's final network
//! weights and eval digest bit-for-bit, at any thread count.

use tango::{BePolicy, CheckpointPolicy, TangoConfig};
use tango_repro::train::{TrainConfig, TrainHarness};
use tango_types::SimTime;

const EPISODES: usize = 4;
const CHECKPOINT_AT: usize = 2;

fn base(threads: Option<usize>) -> TangoConfig {
    let mut cfg = TangoConfig::physical_testbed();
    cfg.clusters = 2;
    cfg.topology.clusters = 2;
    cfg.workload.lc_rps = 20.0;
    cfg.workload.be_rps = 8.0;
    cfg.be_policy = BePolicy::Td3;
    cfg.parallelism = threads;
    cfg
}

fn train_cfg(threads: Option<usize>) -> TrainConfig {
    TrainConfig {
        episodes: EPISODES,
        episode_duration: SimTime::from_secs(1),
        ..TrainConfig::new(base(threads))
    }
}

/// Train to completion; separately train to episode k, checkpoint, build
/// a fresh harness from the bytes and finish — weights and digest must
/// match exactly.
fn assert_resume_equivalence(threads: Option<usize>) {
    let full = TrainHarness::new(train_cfg(threads)).run().unwrap();
    assert_eq!(full.episodes, EPISODES);
    assert!(!full.agent_blob.is_empty());

    let mut h = TrainHarness::new(train_cfg(threads));
    for _ in 0..CHECKPOINT_AT {
        h.step(&mut |_| {}).unwrap();
    }
    let cp = h.checkpoint();
    drop(h); // the "kill": nothing survives but the checkpoint bytes

    let mut resumed = TrainHarness::resume(train_cfg(threads), &cp).unwrap();
    assert_eq!(resumed.episodes_completed(), CHECKPOINT_AT);
    let out = resumed.run().unwrap();
    assert_eq!(
        out.eval_digest, full.eval_digest,
        "resumed eval digest drifted from the uninterrupted run"
    );
    assert_eq!(
        out.agent_blob, full.agent_blob,
        "resumed final weights drifted from the uninterrupted run"
    );
    assert_eq!(out.records, full.records);
}

#[test]
fn resume_matches_uninterrupted_at_one_thread() {
    assert_resume_equivalence(Some(1));
}

#[test]
fn resume_matches_uninterrupted_at_four_threads() {
    assert_resume_equivalence(Some(4));
}

#[test]
fn thread_count_never_changes_the_outcome() {
    // the full cross: train at 1 thread, checkpoint, resume at 4 (and
    // vice versa) — the harness fingerprint masks parallelism exactly
    // like the system snapshot does
    let at1 = TrainHarness::new(train_cfg(Some(1))).run().unwrap();
    let at4 = TrainHarness::new(train_cfg(Some(4))).run().unwrap();
    assert_eq!(at1.eval_digest, at4.eval_digest);
    assert_eq!(at1.agent_blob, at4.agent_blob);

    let mut h = TrainHarness::new(train_cfg(Some(1)));
    h.step(&mut |_| {}).unwrap();
    let cp = h.checkpoint();
    let out = TrainHarness::resume(train_cfg(Some(4)), &cp)
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(out.eval_digest, at1.eval_digest);
    assert_eq!(out.agent_blob, at1.agent_blob);
}

#[test]
fn mid_episode_checkpoints_resume_identically() {
    // world-bearing checkpoints taken inside an episode also land on the
    // uninterrupted outcome
    let mk = |threads| TrainConfig {
        mid_episode: Some(CheckpointPolicy {
            every_n_ticks: 4,
            keep_last_k: 0,
        }),
        ..train_cfg(threads)
    };
    let full = TrainHarness::new(mk(Some(2))).run().unwrap();
    let mut h = TrainHarness::new(mk(Some(2)));
    let mut last: Option<Vec<u8>> = None;
    h.step(&mut |cp| last = Some(cp.to_vec())).unwrap();
    let cp = last.expect("episode 0 produced mid-episode checkpoints");
    let out = TrainHarness::resume(mk(Some(2)), &cp)
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(out.eval_digest, full.eval_digest);
    assert_eq!(out.agent_blob, full.agent_blob);
}

//! Paper-scale (§6.1 dual-space) equivalence tests: the 104-cluster
//! sharded run is bit-identical at every thread count, and
//! checkpoint/restore keeps pace with the ~1000-node system.
//!
//! Horizons are short (a few sync ticks) because these run in debug mode
//! in CI; the full-length scenarios live in the bench binaries.

use tango_repro::tango::{BePolicy, CheckpointPolicy, EdgeCloudSystem, TangoConfig};
use tango_repro::types::SimTime;

/// Digest of the 104-cluster run below, captured at the introduction of
/// the sharded sync loop + incremental candidate views and pinned since.
/// Drift means the paper-scale path stopped being deterministic (or an
/// intentional behavior change — recapture deliberately).
const PAPER_104_DIGEST: u64 = 0xeb7c094ffd83ce86;

const HORIZON: SimTime = SimTime::from_millis(300);

fn cfg_104(threads: usize) -> TangoConfig {
    let mut cfg = TangoConfig::dual_space(104);
    cfg.be_policy = BePolicy::LoadGreedy;
    cfg.parallelism = Some(threads);
    cfg
}

#[test]
fn sharded_104_cluster_run_is_bit_identical_across_thread_counts() {
    let d1 = EdgeCloudSystem::new(cfg_104(1))
        .run(HORIZON, "paper-104")
        .digest();
    assert_eq!(
        d1, PAPER_104_DIGEST,
        "104-cluster digest drifted at 1 thread: {d1:#018x}"
    );
    let d4 = EdgeCloudSystem::new(cfg_104(4))
        .run(HORIZON, "paper-104")
        .digest();
    assert_eq!(
        d4, PAPER_104_DIGEST,
        "104-cluster digest drifted at 4 threads: {d4:#018x}"
    );
}

#[test]
fn thousand_node_checkpoint_restores_to_identical_digest() {
    let cfg = TangoConfig::paper_scale();
    let horizon = SimTime::from_millis(400);
    let (report, checkpoints) = EdgeCloudSystem::new(cfg.clone())
        .run_checkpointed(
            horizon,
            "paper-1k",
            CheckpointPolicy {
                every_n_ticks: 2, // 200 ms at the 100 ms sync cadence
                keep_last_k: 1,
            },
        )
        .expect("paper_scale is snapshottable (non-learning BE)");
    let mid = checkpoints.last().expect("one mid-run checkpoint");
    assert!(mid.at > SimTime::ZERO && mid.at < horizon);
    let resumed = EdgeCloudSystem::restore(cfg, &mid.bytes).expect("restore at ~1000 nodes");
    assert_eq!(resumed.now(), mid.at);
    assert_eq!(
        resumed.finish("paper-1k").digest(),
        report.digest(),
        "restored 1000-node run diverged from the uninterrupted one"
    );
}

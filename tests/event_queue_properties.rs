//! Property tests for the calendar event queue against a `BinaryHeap`
//! oracle.
//!
//! The queue's contract is exactly "pop in ascending `(at, seq)` order,
//! FIFO within an instant" — which a binary heap over `(at, seq)` keys
//! implements by construction. These tests drive both structures through
//! randomized interleavings of push / pop / peek / same-instant coalesced
//! pop — including pushes *behind* the calendar cursor ("schedule in the
//! past", which the engine clamps but the queue must survive) and pushes
//! far enough ahead to land in the overflow heap — and assert the
//! calendar never diverges from the oracle.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use tango_repro::simcore::{EventQueue, SimRng};
use tango_types::SimTime;

/// Reference implementation: a min-heap over `(at, seq, payload)` with
/// the same push-assigned sequence numbers.
#[derive(Default)]
struct Oracle {
    heap: BinaryHeap<Reverse<(SimTime, u64, u32)>>,
    next_seq: u64,
}

impl Oracle {
    fn push(&mut self, at: SimTime, ev: u32) {
        self.heap.push(Reverse((at, self.next_seq, ev)));
        self.next_seq += 1;
    }

    fn pop(&mut self) -> Option<(SimTime, u32)> {
        self.heap.pop().map(|Reverse((at, _, ev))| (at, ev))
    }

    fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse((at, _, _))| *at)
    }

    fn pop_at_if(&mut self, at: SimTime, pred: impl FnOnce(&u32) -> bool) -> Option<u32> {
        let Reverse((t, _, ev)) = self.heap.peek()?;
        if *t != at || !pred(ev) {
            return None;
        }
        self.heap.pop().map(|Reverse((_, _, ev))| ev)
    }
}

/// One ring bucket is 1024 µs and the ring spans 1024 buckets; timestamps
/// are drawn across ~3 ring windows so pushes regularly cross into the
/// overflow heap and migrate back as the cursor sweeps.
const RING_SPAN_US: u64 = 1024 * 1024;

/// Draw a timestamp for the next push: usually near the current popped
/// frontier, sometimes far future (overflow), sometimes in the past
/// (behind the cursor).
fn arb_time(rng: &mut SimRng, frontier: SimTime) -> SimTime {
    let base = frontier.as_micros();
    match rng.next_below(10) {
        // same-instant pile-up: exactly the frontier (exercises FIFO)
        0 | 1 => frontier,
        // behind the cursor: anywhere in [0, frontier]
        2 => SimTime::from_micros(rng.next_below(base + 1)),
        // far future: 1–3 ring windows ahead
        3 | 4 => SimTime::from_micros(base + RING_SPAN_US + rng.next_below(2 * RING_SPAN_US)),
        // near future within the ring window
        _ => SimTime::from_micros(base + rng.next_below(RING_SPAN_US / 2)),
    }
}

#[test]
fn random_interleavings_match_binary_heap_oracle() {
    for seed in 0..20u64 {
        let mut rng = SimRng::new(0xE0_0001 + seed * 7919);
        let mut q: EventQueue<u32> = EventQueue::new();
        let mut oracle = Oracle::default();
        let mut frontier = SimTime::ZERO;
        let mut next_ev = 0u32;
        for _ in 0..4000 {
            match rng.next_below(100) {
                // 55%: push
                0..=54 => {
                    let at = arb_time(&mut rng, frontier);
                    q.push(at, next_ev);
                    oracle.push(at, next_ev);
                    next_ev += 1;
                }
                // 30%: pop
                55..=84 => {
                    let got = q.pop();
                    let want = oracle.pop();
                    assert_eq!(got, want, "seed {seed}: pop diverged");
                    if let Some((at, _)) = got {
                        frontier = at;
                    }
                }
                // 10%: peek
                85..=94 => {
                    assert_eq!(
                        q.peek_time(),
                        oracle.peek_time(),
                        "seed {seed}: peek diverged"
                    );
                }
                // 5%: coalesced pop at the current head instant, with a
                // predicate that sometimes refuses (even payloads only)
                _ => {
                    if let Some(at) = oracle.peek_time() {
                        let got = q.pop_at_if(at, |e| e % 2 == 0);
                        let want = oracle.pop_at_if(at, |e| e % 2 == 0);
                        assert_eq!(got, want, "seed {seed}: pop_at_if diverged");
                    }
                }
            }
            assert_eq!(q.len(), oracle.heap.len(), "seed {seed}: len diverged");
        }
        // drain both to exhaustion — total order must match exactly
        loop {
            let got = q.pop();
            let want = oracle.pop();
            assert_eq!(got, want, "seed {seed}: drain diverged");
            if got.is_none() {
                break;
            }
        }
    }
}

#[test]
fn same_instant_pushes_pop_fifo() {
    let mut q: EventQueue<u32> = EventQueue::new();
    let t = SimTime::from_millis(5);
    // interleave two instants; within each, push order must be preserved
    for i in 0..50 {
        q.push(t, i);
        q.push(SimTime::from_millis(7), 100 + i);
    }
    for i in 0..50 {
        assert_eq!(q.pop(), Some((t, i)));
    }
    for i in 0..50 {
        assert_eq!(q.pop(), Some((SimTime::from_millis(7), 100 + i)));
    }
    assert_eq!(q.pop(), None);
}

#[test]
fn past_pushes_still_pop_in_key_order() {
    let mut q: EventQueue<u32> = EventQueue::new();
    let mut oracle = Oracle::default();
    // march the cursor deep into the ring, then push behind it
    for (i, at) in [10_000u64, 2_000_000, 2_000_000].into_iter().enumerate() {
        q.push(SimTime::from_micros(at), i as u32);
        oracle.push(SimTime::from_micros(at), i as u32);
    }
    assert_eq!(q.pop(), oracle.pop()); // cursor now at ~2s
    for (i, at) in [5u64, 1_500_000, 0].into_iter().enumerate() {
        q.push(SimTime::from_micros(at), 10 + i as u32);
        oracle.push(SimTime::from_micros(at), 10 + i as u32);
    }
    loop {
        let got = q.pop();
        assert_eq!(got, oracle.pop());
        if got.is_none() {
            break;
        }
    }
}

#[test]
fn entries_roundtrip_preserves_pop_order_mid_stream() {
    for seed in 0..5u64 {
        let mut rng = SimRng::new(0x5EED + seed);
        let mut q: EventQueue<u32> = EventQueue::new();
        let mut frontier = SimTime::ZERO;
        for i in 0..800 {
            let at = arb_time(&mut rng, frontier);
            q.push(at, i);
            if rng.chance(0.3) {
                if let Some((at, _)) = q.pop() {
                    frontier = at;
                }
            }
        }
        // capture the pending set (arbitrary order) and rebuild
        let entries: Vec<(SimTime, u64, u32)> =
            q.entries().map(|(at, seq, &ev)| (at, seq, ev)).collect();
        let mut rebuilt = EventQueue::from_entries(entries, q.next_seq());
        assert_eq!(rebuilt.len(), q.len());
        assert_eq!(rebuilt.next_seq(), q.next_seq());
        loop {
            let got = rebuilt.pop();
            assert_eq!(got, q.pop(), "seed {seed}: rebuilt queue diverged");
            if got.is_none() {
                break;
            }
        }
    }
}
